// Algorithm tests: every dataflow algorithm is checked against an independent in-memory
// reference implementation on randomized inputs (property-style TEST_P sweeps).

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <numeric>
#include <queue>
#include <set>
#include <vector>

#include "src/algo/asp.h"
#include "src/algo/kexposure.h"
#include "src/algo/pagerank.h"
#include "src/algo/scc.h"
#include "src/algo/wcc.h"
#include "src/algo/wordcount.h"
#include "src/core/io.h"
#include "src/gen/graphs.h"
#include "src/gen/text.h"

namespace naiad {
namespace {

// ---- reference implementations -------------------------------------------------------

std::map<uint64_t, uint64_t> RefWcc(const std::vector<Edge>& edges) {
  std::map<uint64_t, uint64_t> parent;
  std::function<uint64_t(uint64_t)> find = [&](uint64_t x) {
    parent.try_emplace(x, x);
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : edges) {
    uint64_t a = find(e.first);
    uint64_t b = find(e.second);
    if (a != b) {
      parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::map<uint64_t, uint64_t> out;
  for (const auto& [n, p] : parent) {
    out[n] = find(n);
  }
  return out;
}

std::map<uint64_t, double> RefPageRank(const std::vector<Edge>& edges, uint64_t iters) {
  std::map<uint64_t, double> rank;
  std::map<uint64_t, uint64_t> deg;
  for (const Edge& e : edges) {
    rank.try_emplace(e.first, 1.0);
    rank.try_emplace(e.second, 1.0);
    ++deg[e.first];
  }
  for (uint64_t i = 1; i < iters; ++i) {
    std::map<uint64_t, double> next;
    for (const auto& [n, r] : rank) {
      next[n] = 0.15;
    }
    for (const Edge& e : edges) {
      next[e.second] += 0.85 * rank[e.first] / static_cast<double>(deg[e.first]);
    }
    rank = std::move(next);
  }
  return rank;
}

std::map<std::pair<uint64_t, uint64_t>, uint64_t> RefBfs(const std::vector<Edge>& edges,
                                                         const std::vector<uint64_t>& srcs) {
  std::map<uint64_t, std::vector<uint64_t>> adj;
  for (const Edge& e : edges) {
    adj[e.first].push_back(e.second);
  }
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> dist;
  for (uint64_t s : srcs) {
    std::queue<std::pair<uint64_t, uint64_t>> q;
    q.push({s, 0});
    dist[{s, s}] = 0;
    while (!q.empty()) {
      auto [n, d] = q.front();
      q.pop();
      for (uint64_t nbr : adj[n]) {
        if (dist.try_emplace({nbr, s}, d + 1).second) {
          q.push({nbr, d + 1});
        }
      }
    }
  }
  return dist;
}

// Tarjan SCC reference.
std::map<uint64_t, uint64_t> RefScc(const std::vector<Edge>& edges) {
  std::map<uint64_t, std::vector<uint64_t>> adj;
  std::set<uint64_t> nodes;
  for (const Edge& e : edges) {
    adj[e.first].push_back(e.second);
    nodes.insert(e.first);
    nodes.insert(e.second);
  }
  std::map<uint64_t, uint64_t> index, low, comp;
  std::vector<uint64_t> stack;
  std::set<uint64_t> on_stack;
  uint64_t counter = 0;
  std::function<void(uint64_t)> strongconnect = [&](uint64_t v) {
    index[v] = low[v] = counter++;
    stack.push_back(v);
    on_stack.insert(v);
    for (uint64_t w : adj[v]) {
      if (!index.contains(w)) {
        strongconnect(w);
        low[v] = std::min(low[v], low[w]);
      } else if (on_stack.contains(w)) {
        low[v] = std::min(low[v], index[w]);
      }
    }
    if (low[v] == index[v]) {
      uint64_t min_node = ~0ULL;
      size_t start = stack.size();
      while (true) {
        --start;
        min_node = std::min(min_node, stack[start]);
        if (stack[start] == v) {
          break;
        }
      }
      for (size_t i = start; i < stack.size(); ++i) {
        comp[stack[i]] = min_node;
        on_stack.erase(stack[i]);
      }
      stack.resize(start);
    }
  };
  for (uint64_t n : nodes) {
    if (!index.contains(n)) {
      strongconnect(n);
    }
  }
  return comp;
}

// ---- helpers ---------------------------------------------------------------------------

template <typename T>
struct Gather {
  std::mutex mu;
  std::map<uint64_t, std::vector<T>> by_epoch;
  typename SubscribeVertex<T>::Callback callback() {
    return [this](uint64_t e, std::vector<T>& recs) {
      std::lock_guard<std::mutex> lock(mu);
      auto& v = by_epoch[e];
      v.insert(v.end(), recs.begin(), recs.end());
    };
  }
};

class AlgoSweep : public ::testing::TestWithParam<uint64_t> {};

// ---- tests -----------------------------------------------------------------------------

TEST_P(AlgoSweep, WccMatchesUnionFind) {
  std::vector<Edge> edges = RandomGraph(60, 90, GetParam());
  Gather<NodeLabel> out;
  Controller ctl(Config{.workers_per_process = 3});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  Subscribe<NodeLabel>(ConnectedComponents(in), out.callback());
  ctl.Start();
  handle->OnNext(edges);
  handle->OnCompleted();
  ctl.Join();

  std::map<uint64_t, uint64_t> got;
  for (const NodeLabel& nl : out.by_epoch[0]) {
    got[nl.first] = nl.second;  // GroupBy emits exactly one final label per node
  }
  EXPECT_EQ(got, RefWcc(edges));
}

TEST_P(AlgoSweep, IncrementalWccConvergesAcrossEpochs) {
  std::vector<Edge> edges = RandomGraph(50, 70, GetParam() + 100);
  const size_t half = edges.size() / 2;
  std::vector<Edge> first(edges.begin(), edges.begin() + half);
  std::vector<Edge> second(edges.begin() + half, edges.end());

  std::mutex mu;
  std::map<uint64_t, uint64_t> latest;  // improvements are monotone: keep the minimum
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  Probe probe = ForEach<NodeLabel>(IncrementalConnectedComponents(in),
                                   [&](const Timestamp&, std::vector<NodeLabel>& recs) {
                                     std::lock_guard<std::mutex> lock(mu);
                                     for (const NodeLabel& nl : recs) {
                                       auto [it, fresh] = latest.try_emplace(nl.first, nl.second);
                                       it->second = std::min(it->second, nl.second);
                                     }
                                   });
  ctl.Start();
  handle->OnNext(first);
  handle->OnNext(second);
  handle->OnCompleted();
  ctl.Join();

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(latest, RefWcc(edges));
}

TEST_P(AlgoSweep, PageRankMatchesReference) {
  std::vector<Edge> edges = RandomGraph(40, 80, GetParam() + 200);
  constexpr uint64_t kIters = 8;
  Gather<NodeRank> out;
  Controller ctl(Config{.workers_per_process = 3});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  Subscribe<NodeRank>(PageRank(in, kIters), out.callback());
  ctl.Start();
  handle->OnNext(edges);
  handle->OnCompleted();
  ctl.Join();

  std::map<uint64_t, double> want = RefPageRank(edges, kIters);
  std::map<uint64_t, double> got;
  for (const NodeRank& nr : out.by_epoch[0]) {
    got[nr.first] = nr.second;
  }
  // The dataflow only tracks nodes it saw (same set as the reference).
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [n, r] : want) {
    EXPECT_NEAR(got[n], r, 1e-9) << "node " << n;
  }
}

TEST_P(AlgoSweep, EdgePartitionedPageRankMatchesVertexVariant) {
  std::vector<Edge> edges = RandomGraph(40, 80, GetParam() + 300);
  constexpr uint64_t kIters = 6;
  Gather<NodeRank> out;
  Controller ctl(Config{.workers_per_process = 3});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  Subscribe<NodeRank>(PageRankEdgePartitioned(in, kIters), out.callback());
  ctl.Start();
  handle->OnNext(edges);
  handle->OnCompleted();
  ctl.Join();

  std::map<uint64_t, double> want = RefPageRank(edges, kIters);
  std::map<uint64_t, double> got;
  for (const NodeRank& nr : out.by_epoch[0]) {
    got[nr.first] = nr.second;
  }
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [n, r] : want) {
    EXPECT_NEAR(got[n], r, 1e-9) << "node " << n;
  }
}

// CSR-substrate equivalence (the columnar rewrite must be a pure representation change):
// same reference, same tolerance as the variants it replaces.

TEST_P(AlgoSweep, CsrPageRankMatchesReference) {
  std::vector<Edge> edges = RandomGraph(40, 80, GetParam() + 600);
  constexpr uint64_t kIters = 8;
  Gather<NodeRank> out;
  Controller ctl(Config{.workers_per_process = 3});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  Subscribe<NodeRank>(PageRankCsr(in, kIters), out.callback());
  ctl.Start();
  handle->OnNext(edges);
  handle->OnCompleted();
  ctl.Join();

  std::map<uint64_t, double> want = RefPageRank(edges, kIters);
  std::map<uint64_t, double> got;
  for (const NodeRank& nr : out.by_epoch[0]) {
    ASSERT_TRUE(got.try_emplace(nr.first, nr.second).second)
        << "node " << nr.first << " emitted twice";
  }
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [n, r] : want) {
    EXPECT_NEAR(got[n], r, 1e-9) << "node " << n;
  }
}

TEST_P(AlgoSweep, CsrPageRankMatchesVertexVariantOnPowerLaw) {
  std::vector<Edge> edges = PowerLawGraph(48, 150, 1.1, GetParam() + 650);
  constexpr uint64_t kIters = 6;
  auto run = [&](auto build) {
    Gather<NodeRank> out;
    Controller ctl(Config{.workers_per_process = 4});
    GraphBuilder b(ctl);
    auto [in, handle] = NewInput<Edge>(b);
    Subscribe<NodeRank>(build(in), out.callback());
    ctl.Start();
    handle->OnNext(edges);
    handle->OnCompleted();
    ctl.Join();
    std::map<uint64_t, double> got;
    for (const NodeRank& nr : out.by_epoch[0]) {
      got[nr.first] = nr.second;
    }
    return got;
  };
  std::map<uint64_t, double> vertex =
      run([&](Stream<Edge>& in) { return PageRank(in, kIters); });
  std::map<uint64_t, double> csr =
      run([&](Stream<Edge>& in) { return PageRankCsr(in, kIters); });
  ASSERT_EQ(csr.size(), vertex.size());
  for (const auto& [n, r] : vertex) {
    ASSERT_TRUE(csr.contains(n)) << "node " << n;
    EXPECT_NEAR(csr[n], r, 1e-9) << "node " << n;
  }
}

TEST_P(AlgoSweep, CsrWccMatchesUnionFind) {
  std::vector<Edge> edges = RandomGraph(60, 90, GetParam() + 700);
  Gather<NodeLabel> out;
  Controller ctl(Config{.workers_per_process = 3});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  Subscribe<NodeLabel>(ConnectedComponentsCsr(in), out.callback());
  ctl.Start();
  handle->OnNext(edges);
  handle->OnCompleted();
  ctl.Join();

  std::map<uint64_t, uint64_t> got;
  for (const NodeLabel& nl : out.by_epoch[0]) {
    got[nl.first] = nl.second;
  }
  EXPECT_EQ(got, RefWcc(edges));
}

TEST_P(AlgoSweep, CsrWccMatchesLegacyOnPowerLaw) {
  std::vector<Edge> edges = PowerLawGraph(64, 140, 1.2, GetParam() + 750);
  auto run = [&](auto build) {
    Gather<NodeLabel> out;
    Controller ctl(Config{.workers_per_process = 4});
    GraphBuilder b(ctl);
    auto [in, handle] = NewInput<Edge>(b);
    Subscribe<NodeLabel>(build(in), out.callback());
    ctl.Start();
    handle->OnNext(edges);
    handle->OnCompleted();
    ctl.Join();
    std::map<uint64_t, uint64_t> got;
    for (const NodeLabel& nl : out.by_epoch[0]) {
      got[nl.first] = nl.second;
    }
    return got;
  };
  std::map<uint64_t, uint64_t> legacy =
      run([&](Stream<Edge>& in) { return ConnectedComponents(in); });
  std::map<uint64_t, uint64_t> csr =
      run([&](Stream<Edge>& in) { return ConnectedComponentsCsr(in); });
  EXPECT_EQ(csr, legacy);
  EXPECT_EQ(csr, RefWcc(edges));
}

TEST_P(AlgoSweep, AspMatchesBfs) {
  std::vector<Edge> edges = RandomGraph(50, 100, GetParam() + 400);
  std::vector<uint64_t> sources = {1, 2, 3};
  Gather<AspMsg> out;
  Controller ctl(Config{.workers_per_process = 3});
  GraphBuilder b(ctl);
  auto [ein, ehandle] = NewInput<Edge>(b);
  auto [sin, shandle] = NewInput<uint64_t>(b);
  Subscribe<AspMsg>(ApproximateShortestPaths(ein, sin), out.callback());
  ctl.Start();
  ehandle->OnNext(edges);
  shandle->OnNext(sources);
  ehandle->OnCompleted();
  shandle->OnCompleted();
  ctl.Join();

  std::map<std::pair<uint64_t, uint64_t>, uint64_t> got;
  for (const AspMsg& m : out.by_epoch[0]) {
    got[{std::get<0>(m), std::get<1>(m)}] = std::get<2>(m);
  }
  EXPECT_EQ(got, RefBfs(edges, sources));
}

TEST_P(AlgoSweep, SccMatchesTarjanOnNontrivialComponents) {
  // Denser graphs so non-trivial SCCs exist.
  std::vector<Edge> edges = RandomGraph(24, 70, GetParam() + 500);
  Gather<NodeLabel> out;
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  Subscribe<NodeLabel>(StronglyConnectedComponents(in, 5), out.callback());
  ctl.Start();
  handle->OnNext(edges);
  handle->OnCompleted();
  ctl.Join();

  std::map<uint64_t, uint64_t> got;
  for (const NodeLabel& nl : out.by_epoch[0]) {
    got[nl.first] = nl.second;
  }
  // Reference, restricted to non-trivial components (the dataflow only names nodes that
  // retain an intra-SCC edge).
  std::map<uint64_t, uint64_t> ref = RefScc(edges);
  std::map<uint64_t, int> comp_size;
  for (const auto& [n, c] : ref) {
    ++comp_size[c];
  }
  // Self-loop nodes form size-1 SCCs with an intra-SCC edge; treat them as non-trivial.
  std::set<uint64_t> self_loop;
  for (const Edge& e : edges) {
    if (e.first == e.second) {
      self_loop.insert(e.first);
    }
  }
  std::map<uint64_t, uint64_t> want;
  for (const auto& [n, c] : ref) {
    if (comp_size[c] > 1 || self_loop.contains(n)) {
      want[n] = c;
    }
  }
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgoSweep, ::testing::Range<uint64_t>(0, 6));

TEST(WordCountTest, MatchesSequentialCount) {
  std::vector<std::string> corpus = ZipfCorpus(200, 8, 50, 42);
  std::map<std::string, uint64_t> want;
  for (const std::string& line : corpus) {
    for (const std::string& w : SplitWords(line)) {
      ++want[w];
    }
  }
  Gather<WordCountRecord> out;
  Controller ctl(Config{.workers_per_process = 4});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<std::string>(b);
  Subscribe<WordCountRecord>(WordCount(in), out.callback());
  ctl.Start();
  handle->OnNext(corpus);
  handle->OnCompleted();
  ctl.Join();
  std::map<std::string, uint64_t> got(out.by_epoch[0].begin(), out.by_epoch[0].end());
  EXPECT_EQ(got, want);
}

TEST(KExposureTest, CountsFollowerExposures) {
  // follower graph: user 10 and 11 follow user 1; user 12 follows user 2.
  std::vector<Edge> followers = {{10, 1}, {11, 1}, {12, 2}};
  Tweet t1{1, {7}, {}};   // tag 7 exposes 10 and 11
  Tweet t2{2, {7}, {}};   // tag 7 exposes 12
  Tweet t3{1, {7}, {}};   // duplicate (user, tag) within the epoch: Distinct removes it
  Tweet t4{2, {8}, {}};   // tag 8 exposes 12

  Gather<TagExposure> out;
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [tin, thandle] = NewInput<Tweet>(b);
  auto [fin, fhandle] = NewInput<Edge>(b);
  Subscribe<TagExposure>(KExposure(tin, fin), out.callback());
  ctl.Start();
  fhandle->OnNext(followers);
  thandle->OnNext({t1, t2, t3, t4});
  fhandle->OnCompleted();
  thandle->OnNext({t1});  // epoch 1: same tweet again -> new epoch, counted again
  thandle->OnCompleted();
  ctl.Join();

  std::map<uint64_t, uint64_t> epoch0(out.by_epoch[0].begin(), out.by_epoch[0].end());
  EXPECT_EQ(epoch0[7], 3u);  // exposures of 10, 11 (via t1) and 12 (via t2)
  EXPECT_EQ(epoch0[8], 1u);
  std::map<uint64_t, uint64_t> epoch1(out.by_epoch[1].begin(), out.by_epoch[1].end());
  EXPECT_EQ(epoch1[7], 2u);
}

}  // namespace
}  // namespace naiad
