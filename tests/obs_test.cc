// Tests for the observability layer (src/obs): histogram bucketing and cross-block
// merging, the disabled-registry contract, trace-ring wrap semantics, Chrome trace-event
// output, and end-to-end metric/trace collection from a real computation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/core/io.h"
#include "src/core/stage.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"

namespace naiad {
namespace {

TEST(LogHistogramTest, BucketsByBitWidthAndSums) {
  obs::LogHistogram h;
  h.Record(0);   // bucket 0
  h.Record(1);   // bucket 1: [1, 2)
  h.Record(3);   // bucket 2: [2, 4)
  h.Record(3);
  h.Record(900);  // bucket 10: [512, 1024)
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(10), 1u);
  EXPECT_EQ(h.sum(), 907u);
}

TEST(SnapshotBuilderTest, MergesHistogramsAtBucketGranularityAndSumsCounters) {
  obs::LogHistogram a;
  obs::LogHistogram b;
  for (int i = 0; i < 97; ++i) {
    a.Record(3);  // bucket 2
  }
  for (int i = 0; i < 3; ++i) {
    b.Record(1000000);  // bucket 20
  }
  obs::SnapshotBuilder builder;
  builder.Histogram("lat", a);
  builder.Histogram("lat", b);  // same name: must merge raw buckets, not percentiles
  builder.Counter("n", 2);
  builder.Counter("n", 3);
  obs::ObsSnapshot snap = builder.Finalize();
  EXPECT_EQ(snap.counter("n"), 5u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const obs::HistogramSnapshot& s = snap.histograms[0];
  EXPECT_EQ(s.name, "lat");
  EXPECT_EQ(s.count, 100u);
  // p50 sits in the dense low bucket; p99 (rank 99 of 100, outliers at ranks 98-100)
  // must land in the outlier bucket — which merging finalized per-histogram p99s
  // (97 at ~3 in one block, 3 at ~1e6 in the other) could not produce.
  EXPECT_LT(s.p50, 10.0);
  EXPECT_GT(s.p99, 100000.0);
  EXPECT_GE(s.max, 1000000.0);
  EXPECT_NEAR(s.mean, (97 * 3 + 3 * 1000000.0) / 100.0, 1.0);
}

TEST(MetricsTest, DisabledRegistryHandsOutNullBlocks) {
  obs::Metrics m(/*enabled=*/false, /*workers=*/4, /*links=*/4);
  EXPECT_FALSE(m.enabled());
  EXPECT_EQ(m.worker(0), nullptr);
  EXPECT_EQ(m.link(3), nullptr);
  EXPECT_EQ(m.process(), nullptr);
  EXPECT_TRUE(m.Snapshot(0).empty());
}

TEST(MetricsTest, EnabledRegistryHasDistinctCacheLinePaddedBlocks) {
  obs::Metrics m(/*enabled=*/true, /*workers=*/2, /*links=*/2);
  ASSERT_NE(m.worker(0), nullptr);
  ASSERT_NE(m.worker(1), nullptr);
  EXPECT_NE(m.worker(0), m.worker(1));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(m.worker(0)) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(m.worker(1)) % 64, 0u);
  m.worker(0)->items_run.fetch_add(7, std::memory_order_relaxed);
  m.worker(1)->notifications_delivered.fetch_add(2, std::memory_order_relaxed);
  obs::ObsSnapshot snap = m.Snapshot(0);
  EXPECT_EQ(snap.counter("items_run"), 7u);
  EXPECT_EQ(snap.counter("notifications_delivered"), 2u);
  EXPECT_EQ(snap.counter("items_run.w0"), 7u);
  EXPECT_EQ(snap.counter("notifications_delivered.w1"), 2u);
}

TEST(TraceRingTest, WrapKeepsNewestAndCountsDropped) {
  obs::TraceRing ring("t", 4);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Record(obs::TraceKind::kFrontierAdvance, /*ts_ns=*/100 + i, 0, i, 0, 0);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  std::vector<obs::TraceEvent> events = ring.Drain();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a0, 6 + i);  // oldest-first, newest retained
  }
}

TEST(TracerTest, DisabledTracerIsInert) {
  obs::Tracer t(/*enabled=*/false, 64);
  EXPECT_EQ(t.RegisterThread("w"), nullptr);
  t.Control(obs::TraceKind::kEpochOpen, 0, 0, 0);  // must not crash
  EXPECT_EQ(t.MinTimestampNs(), UINT64_MAX);
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return "";
  }
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  return contents;
}

TEST(TracerTest, WriteFileEmitsChromeTraceEventsWithThreadNames) {
  obs::Tracer t(/*enabled=*/true, 64);
  obs::TraceRing* ring = t.RegisterThread("worker0");
  ASSERT_NE(ring, nullptr);
  const uint64_t t0 = obs::MonotonicNs();
  ring->Record(obs::TraceKind::kFrontierAdvance, t0 + 1000, 0, /*stage=*/3, /*epoch=*/1, 0);
  ring->Record(obs::TraceKind::kNotifyDelivered, t0 + 2000, 500, 3, 1, 250);
  t.Control(obs::TraceKind::kEpochOpen, /*stage=*/0, /*epoch=*/1, 0);
  t.ControlSpan(obs::TraceKind::kCheckpoint, t0, t0 + 5000, /*bytes=*/42, 0, 0);

  const std::string path = ::testing::TempDir() + "/naiad_obs_test_trace.json";
  ASSERT_TRUE(obs::Tracer::WriteFile(path, {{0, &t}}));
  const std::string json = ReadWholeFile(path);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("worker0"), std::string::npos);
  EXPECT_NE(json.find("\"frontier\""), std::string::npos);
  EXPECT_NE(json.find("\"notify\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch_open\""), std::string::npos);
  EXPECT_NE(json.find("\"checkpoint\""), std::string::npos);
  EXPECT_EQ(json.find("trace_dropped"), std::string::npos);
  // Balanced braces/brackets — a cheap structural sanity check (CI runs a real JSON
  // parser over traces via tools/check_trace.py).
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (in_string) {
      continue;
    }
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  std::remove(path.c_str());
}

// End to end: a notify-using computation with observability on populates the worker
// metrics and writes a loadable trace with frontier/notify events.
class NotifyCountVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    auto [it, fresh] = counts_.try_emplace(t, 0);
    if (fresh) {
      NotifyAt(t);
    }
    it->second += batch.size();
  }
  void OnNotify(const Timestamp& t) override {
    output().Send(t, counts_[t]);
    counts_.erase(t);
  }

 private:
  std::map<Timestamp, uint64_t> counts_;
};

TEST(ObsEndToEndTest, ComputationPopulatesMetricsAndTrace) {
  const std::string path = ::testing::TempDir() + "/naiad_obs_e2e_trace.json";
  Config cfg{.workers_per_process = 2};
  cfg.obs.metrics = true;
  cfg.obs.tracing = true;
  cfg.obs.trace_path = path;
  std::atomic<uint64_t> total{0};
  {
    Controller ctl(cfg);
    GraphBuilder b(ctl);
    auto [in, handle] = NewInput<uint64_t>(b);
    StageId counter = b.NewStage<NotifyCountVertex>(
        StageOptions{.name = "count", .parallelism = 1},
        [](uint32_t) { return std::make_unique<NotifyCountVertex>(); });
    b.Connect<NotifyCountVertex, uint64_t>(in, counter);
    Subscribe<uint64_t>(b.OutputOf<uint64_t>(counter),
                        [&](uint64_t, std::vector<uint64_t>& recs) {
                          for (uint64_t v : recs) {
                            total.fetch_add(v);
                          }
                        });
    ctl.Start();
    for (uint64_t e = 0; e < 3; ++e) {
      handle->OnNext({e, e + 1});
    }
    handle->OnCompleted();
    ctl.Join();

    obs::ObsSnapshot snap = ctl.obs().metrics().Snapshot(0);
    EXPECT_GT(snap.counter("items_run"), 0u);
    EXPECT_GT(snap.counter("notifications_delivered"), 0u);
    EXPECT_GT(snap.counter("progress_flushes"), 0u);
    bool saw_run_time = false;
    for (const obs::HistogramSnapshot& h : snap.histograms) {
      saw_run_time = saw_run_time || (h.name == "run_time_ns" && h.count > 0);
    }
    EXPECT_TRUE(saw_run_time);
  }  // ~Controller → Stop() → trace written
  EXPECT_EQ(total.load(), 2u * 3u);  // per-epoch record counts: 2 records x 3 epochs
  const std::string json = ReadWholeFile(path);
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"frontier\""), std::string::npos);
  EXPECT_NE(json.find("\"notify\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch_open\""), std::string::npos);
  std::remove(path.c_str());
}

// The disabled configuration must stay disabled end to end (no trace file, no metrics).
TEST(ObsEndToEndTest, DisabledByDefault) {
  Controller ctl(Config{.workers_per_process = 1});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  Subscribe<uint64_t>(Stream<uint64_t>(in), [](uint64_t, std::vector<uint64_t>&) {});
  ctl.Start();
  handle->OnNext({1, 2, 3});
  handle->OnCompleted();
  ctl.Join();
  EXPECT_FALSE(ctl.obs().metrics().enabled());
  EXPECT_FALSE(ctl.obs().tracer().enabled());
  EXPECT_TRUE(ctl.obs().metrics().Snapshot(0).empty());
}

}  // namespace
}  // namespace naiad
