// End-to-end tests of the single-process runtime: typed stages, exchange partitioning,
// epochs and notifications, loop contexts, the Figure 4 vertex, and the §3.3 safety
// property under multi-worker execution.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/core/io.h"
#include "src/core/loop.h"
#include "src/core/stage.h"

namespace naiad {
namespace {

// A stateless map vertex.
class DoubleVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    for (uint64_t& x : batch) {
      x *= 2;
    }
    output().SendBatch(t, std::move(batch));
  }
};

TEST(RuntimeTest, MapPipelineDeliversPerEpoch) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  StageId map = b.NewStage<DoubleVertex>(StageOptions{.name = "double"}, [](uint32_t) {
    return std::make_unique<DoubleVertex>();
  });
  b.Connect<DoubleVertex, uint64_t>(in, map);

  std::mutex mu;
  std::map<uint64_t, std::multiset<uint64_t>> results;
  Subscribe<uint64_t>(b.OutputOf<uint64_t>(map),
                      [&](uint64_t epoch, std::vector<uint64_t>& recs) {
                        std::lock_guard<std::mutex> lock(mu);
                        results[epoch].insert(recs.begin(), recs.end());
                      });

  ctl.Start();
  handle->OnNext({1, 2, 3});
  handle->OnNext({10});
  handle->OnNext({});  // empty epoch
  handle->OnCompleted();
  ctl.Join();

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(results[0], (std::multiset<uint64_t>{2, 4, 6}));
  EXPECT_EQ(results[1], (std::multiset<uint64_t>{20}));
  EXPECT_EQ(results.count(2), 0u);  // empty epochs produce no callback
}

// Records which vertex instance saw which key.
class RecordingVertex final : public SinkVertex<uint64_t> {
 public:
  RecordingVertex(std::mutex* mu, std::map<uint64_t, std::set<uint32_t>>* seen)
      : mu_(mu), seen_(seen) {}
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    std::lock_guard<std::mutex> lock(*mu_);
    for (uint64_t x : batch) {
      (*seen_)[x].insert(address().index);
    }
  }

 private:
  std::mutex* mu_;
  std::map<uint64_t, std::set<uint32_t>>* seen_;
};

TEST(RuntimeTest, ExchangeRoutesEqualKeysToOneVertex) {
  Controller ctl(Config{.workers_per_process = 4});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  std::mutex mu;
  std::map<uint64_t, std::set<uint32_t>> seen;
  StageId sink = b.NewStage<RecordingVertex>(
      StageOptions{.name = "sink"},
      [&](uint32_t) { return std::make_unique<RecordingVertex>(&mu, &seen); });
  b.Connect<RecordingVertex, uint64_t>(in, sink, 0, [](const uint64_t& x) { return x % 10; });

  ctl.Start();
  std::vector<uint64_t> data;
  for (uint64_t i = 0; i < 1000; ++i) {
    data.push_back(i);
  }
  handle->OnNext(std::move(data));
  handle->OnCompleted();
  ctl.Join();

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(seen.size(), 1000u);
  std::map<uint64_t, uint32_t> key_owner;
  for (const auto& [value, vertices] : seen) {
    ASSERT_EQ(vertices.size(), 1u) << "value " << value << " delivered to several vertices";
    auto [it, fresh] = key_owner.emplace(value % 10, *vertices.begin());
    EXPECT_EQ(it->second, *vertices.begin()) << "partition key split across vertices";
  }
}

// Figure 4: distinct records stream out immediately; counts wait for the notification.
class DistinctCountVertex final
    : public Unary2Vertex<std::string, std::string, std::pair<std::string, uint64_t>> {
 public:
  void OnRecv(const Timestamp& t, std::vector<std::string>& batch) override {
    auto [it, fresh] = counts_.try_emplace(t);
    if (fresh) {
      NotifyAt(t);
    }
    for (std::string& s : batch) {
      auto [cit, first_sight] = it->second.try_emplace(s, 0);
      if (first_sight) {
        output1().Send(t, s);
      }
      ++cit->second;
    }
  }
  void OnNotify(const Timestamp& t) override {
    for (const auto& [word, n] : counts_[t]) {
      output2().Send(t, {word, n});
    }
    counts_.erase(t);
  }

 private:
  std::map<Timestamp, std::map<std::string, uint64_t>> counts_;
};

TEST(RuntimeTest, Figure4DistinctCount) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<std::string>(b);
  StageId dc = b.NewStage<DistinctCountVertex>(StageOptions{.name = "distinct-count"},
                                               [](uint32_t) {
                                                 return std::make_unique<DistinctCountVertex>();
                                               });
  b.Connect<DistinctCountVertex, std::string>(
      in, dc, 0, [](const std::string& s) { return HashString(s); });

  std::mutex mu;
  std::map<uint64_t, std::multiset<std::string>> distinct;
  std::map<uint64_t, std::map<std::string, uint64_t>> counted;
  Subscribe<std::string>(b.OutputOf<std::string>(dc, 0),
                         [&](uint64_t e, std::vector<std::string>& recs) {
                           std::lock_guard<std::mutex> lock(mu);
                           distinct[e].insert(recs.begin(), recs.end());
                         });
  Subscribe<std::pair<std::string, uint64_t>>(
      b.OutputOf<std::pair<std::string, uint64_t>>(dc, 1),
      [&](uint64_t e, std::vector<std::pair<std::string, uint64_t>>& recs) {
        std::lock_guard<std::mutex> lock(mu);
        for (auto& [w, n] : recs) {
          counted[e][w] += n;
        }
      });

  ctl.Start();
  handle->OnNext({"a", "b", "a", "a", "c", "b"});
  handle->OnNext({"b", "b"});
  handle->OnCompleted();
  ctl.Join();

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(distinct[0], (std::multiset<std::string>{"a", "b", "c"}));
  EXPECT_EQ(distinct[1], (std::multiset<std::string>{"b"}));
  EXPECT_EQ(counted[0]["a"], 3u);
  EXPECT_EQ(counted[0]["b"], 2u);
  EXPECT_EQ(counted[0]["c"], 1u);
  EXPECT_EQ(counted[1]["b"], 2u);
}

// Loop body: positive values go around again (decremented); zeros exit.
class CountdownVertex final : public Unary2Vertex<uint64_t, uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    for (uint64_t x : batch) {
      if (x > 0) {
        output1().Send(t, x - 1);  // to feedback
      } else {
        output2().Send(t, t.coords.back());  // exits with the iteration it finished at
      }
    }
  }
};

TEST(RuntimeTest, LoopIteratesToFixedPoint) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  LoopContext loop(b, 0);
  FeedbackHandle<uint64_t> fb = loop.NewFeedback<uint64_t>();
  Stream<uint64_t> entered = loop.Ingress<uint64_t>(in);

  StageId body = b.NewStage<CountdownVertex>(
      StageOptions{.name = "countdown", .depth = 1},
      [](uint32_t) { return std::make_unique<CountdownVertex>(); });
  b.Connect<CountdownVertex, uint64_t>(entered, body);
  b.Connect<CountdownVertex, uint64_t>(fb.stream(), body);
  fb.ConnectLoop(b.OutputOf<uint64_t>(body, 0));
  Stream<uint64_t> done = loop.Egress<uint64_t>(b.OutputOf<uint64_t>(body, 1));

  std::mutex mu;
  std::map<uint64_t, std::multiset<uint64_t>> exits;
  Subscribe<uint64_t>(done, [&](uint64_t e, std::vector<uint64_t>& recs) {
    std::lock_guard<std::mutex> lock(mu);
    exits[e].insert(recs.begin(), recs.end());
  });

  ctl.Start();
  handle->OnNext({0, 3, 5});
  handle->OnNext({2});
  handle->OnCompleted();
  ctl.Join();

  std::lock_guard<std::mutex> lock(mu);
  // A value v entering at iteration 0 exits at iteration v.
  EXPECT_EQ(exits[0], (std::multiset<uint64_t>{0, 3, 5}));
  EXPECT_EQ(exits[1], (std::multiset<uint64_t>{2}));
}

// Notification-only barrier (the §5.2 microbenchmark pattern): every vertex requests
// NotifyAt((0, i+1)) from OnNotify((0, i)). The §3.3 safety property says OnNotify((e,i))
// may run only when *every* vertex has finished iteration i-1.
class BarrierVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  BarrierVertex(uint64_t iters, std::atomic<uint64_t>* done_counts, std::atomic<bool>* violated)
      : iters_(iters), done_counts_(done_counts), violated_(violated) {}

  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {}

  void OnNotify(const Timestamp& t) override {
    const uint64_t iter = t.coords.back();
    // Safety: nobody may be more than one full iteration behind us.
    const uint64_t finished_before = done_counts_[iter > 0 ? iter - 1 : 0].load();
    if (iter > 0 && finished_before != controller().total_workers()) {
      violated_->store(true);
    }
    done_counts_[iter].fetch_add(1);
    if (iter + 1 < iters_) {
      NotifyAt(t.Incremented());
    }
  }

 private:
  uint64_t iters_;
  std::atomic<uint64_t>* done_counts_;
  std::atomic<bool>* violated_;
};

TEST(RuntimeTest, NotificationBarrierIsGloballyOrdered) {
  constexpr uint64_t kIters = 50;
  Controller ctl(Config{.workers_per_process = 4});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  LoopContext loop(b, 0);
  FeedbackHandle<uint64_t> fb = loop.NewFeedback<uint64_t>();
  Stream<uint64_t> entered = loop.Ingress<uint64_t>(in);

  std::vector<std::atomic<uint64_t>> done(kIters);
  std::atomic<bool> violated{false};
  StageId barrier = b.NewStage<BarrierVertex>(
      StageOptions{.name = "barrier",
                   .depth = 1,
                   .initial_notifications = {Timestamp(0, {0})}},
      [&](uint32_t) {
        return std::make_unique<BarrierVertex>(kIters, done.data(), &violated);
      });
  b.Connect<BarrierVertex, uint64_t>(entered, barrier);
  b.Connect<BarrierVertex, uint64_t>(fb.stream(), barrier);
  fb.ConnectLoop(b.OutputOf<uint64_t>(barrier, 0));

  ctl.Start();
  handle->OnCompleted();  // no data: pure coordination
  ctl.Join();

  EXPECT_FALSE(violated.load());
  for (uint64_t i = 0; i < kIters; ++i) {
    EXPECT_EQ(done[i].load(), ctl.total_workers()) << "iteration " << i;
  }
}

TEST(RuntimeTest, ProbeWaitsForEpochCompletion) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  std::atomic<uint64_t> total{0};
  Probe probe = ForEach<uint64_t>(in, [&](const Timestamp&, std::vector<uint64_t>& recs) {
    for (uint64_t v : recs) {
      total.fetch_add(v);
    }
  });
  ctl.Start();
  handle->OnNext({1, 2, 3, 4});
  probe.WaitPassed(0);
  EXPECT_EQ(total.load(), 10u);
  handle->OnNext({5});
  probe.WaitPassed(1);
  EXPECT_EQ(total.load(), 15u);
  handle->OnCompleted();
  ctl.Join();
}

// Re-entrant self-loop: a vertex sends to itself through a feedback stage with a bounded
// re-entrancy depth; the chain must complete without unbounded queue growth or deadlock.
class SelfSendVertex final : public Unary2Vertex<uint64_t, uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    for (uint64_t x : batch) {
      if (x > 0) {
        output1().Send(t, x - 1);
        output1().Flush();  // force immediate routing (possibly re-entrant)
      } else {
        output2().Send(t, 1);
      }
    }
  }
};

TEST(RuntimeTest, BoundedReentrancyCompletes) {
  Controller ctl(Config{.workers_per_process = 1});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  LoopContext loop(b, 0);
  FeedbackHandle<uint64_t> fb = loop.NewFeedback<uint64_t>();
  Stream<uint64_t> entered = loop.Ingress<uint64_t>(in);
  StageId body = b.NewStage<SelfSendVertex>(
      StageOptions{.name = "selfsend", .depth = 1, .parallelism = 1, .reentrancy = 8},
      [](uint32_t) { return std::make_unique<SelfSendVertex>(); });
  b.Connect<SelfSendVertex, uint64_t>(entered, body);
  b.Connect<SelfSendVertex, uint64_t>(fb.stream(), body);
  fb.ConnectLoop(b.OutputOf<uint64_t>(body, 0));
  Stream<uint64_t> done = loop.Egress<uint64_t>(b.OutputOf<uint64_t>(body, 1));

  std::atomic<uint64_t> finished{0};
  Subscribe<uint64_t>(done, [&](uint64_t, std::vector<uint64_t>& recs) {
    finished.fetch_add(recs.size());
  });

  ctl.Start();
  handle->OnNext({300});
  handle->OnCompleted();
  ctl.Join();
  EXPECT_EQ(finished.load(), 1u);
}

// §2.4 state-purging notifications: a purge's guarantee holds (never early), it never
// blocks other vertices' notifications, and it still fires during drain.
class PurgingVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  PurgingVertex(std::atomic<uint64_t>* purged_epoch, std::atomic<uint64_t>* seen_epoch)
      : purged_epoch_(purged_epoch), seen_epoch_(seen_epoch) {}

  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    state_[t.epoch] = batch.size();
    seen_epoch_->store(std::max(seen_epoch_->load(), t.epoch));
    PurgeAt(t);  // free this epoch's state once the frontier passes it
  }

  void OnNotify(const Timestamp& t) override {
    // Guarantee: the purge must not run before every message at <= t was delivered.
    EXPECT_GE(seen_epoch_->load(), t.epoch);
    EXPECT_TRUE(state_.contains(t.epoch));
    state_.erase(t.epoch);
    purged_epoch_->store(std::max(purged_epoch_->load(), t.epoch));
  }

 private:
  std::map<uint64_t, size_t> state_;
  std::atomic<uint64_t>* purged_epoch_;
  std::atomic<uint64_t>* seen_epoch_;
};

TEST(RuntimeTest, PurgeNotificationsFireAfterGuaranteeAndDoNotBlock) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  std::atomic<uint64_t> purged{0};
  std::atomic<uint64_t> seen{0};
  StageId purger = b.NewStage<PurgingVertex>(
      StageOptions{.name = "purger", .parallelism = 1},
      [&](uint32_t) { return std::make_unique<PurgingVertex>(&purged, &seen); });
  b.Connect<PurgingVertex, uint64_t>(in, purger);
  // A second consumer with ordinary notifications: purges must not delay it.
  std::atomic<uint64_t> counted{0};
  Subscribe<uint64_t>(Stream<uint64_t>(in), [&](uint64_t, std::vector<uint64_t>& recs) {
    counted.fetch_add(recs.size());
  });
  ctl.Start();
  for (uint64_t e = 0; e < 5; ++e) {
    handle->OnNext({e, e, e});
  }
  handle->OnCompleted();
  ctl.Join();
  EXPECT_EQ(counted.load(), 15u);
  EXPECT_EQ(purged.load(), 4u);  // every epoch's state reclaimed by drain time
}

// Regression for the §2.4 capability bookkeeping around nested deliveries: a bundle
// delivered re-entrantly inside a purge callback is an ordinary callback (it may send),
// but the enclosing purge must be ⊤-restricted again the moment the nested delivery
// returns — RunNested used to save/restore the time context but not in_purge_.
class PurgeProbeItem final : public WorkItemBase {
 public:
  PurgeProbeItem(Worker* w, std::atomic<int>* in_purge_inside)
      : WorkItemBase(0, Timestamp(0), 0, nullptr), w_(w), inside_(in_purge_inside) {}
  void Run() override { inside_->store(w_->in_purge() ? 1 : 0); }

 private:
  Worker* w_;
  std::atomic<int>* inside_;
};

class NestedDuringPurgeVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  NestedDuringPurgeVertex(std::atomic<int>* inside, std::atomic<int>* after)
      : inside_(inside), after_(after) {}

  void OnRecv(const Timestamp& t, std::vector<uint64_t>&) override { PurgeAt(t); }

  void OnNotify(const Timestamp&) override {
    // Purge callback: drive a nested delivery through the worker, exactly as a
    // re-entrant route (stage.h) would.
    worker().RunNested(std::make_unique<PurgeProbeItem>(&worker(), inside_));
    after_->store(worker().in_purge() ? 1 : 0);
  }

 private:
  std::atomic<int>* inside_;
  std::atomic<int>* after_;
};

TEST(RuntimeTest, NestedDeliveryDuringPurgeRestoresCapability) {
  Controller ctl(Config{.workers_per_process = 1});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  std::atomic<int> inside{-1};
  std::atomic<int> after{-1};
  StageId purger = b.NewStage<NestedDuringPurgeVertex>(
      StageOptions{.name = "nestedpurge", .parallelism = 1},
      [&](uint32_t) { return std::make_unique<NestedDuringPurgeVertex>(&inside, &after); });
  b.Connect<NestedDuringPurgeVertex, uint64_t>(in, purger);
  ctl.Start();
  handle->OnNext({1});
  handle->OnCompleted();
  ctl.Join();
  // The nested delivery ran with the item's own capability, not the purge's ⊤...
  EXPECT_EQ(inside.load(), 0);
  // ...and the purge restriction came back once it returned (the predicate NotifyAt and
  // CheckNotPast consult).
  EXPECT_EQ(after.load(), 1);
}

TEST(RuntimeTest, ManyWorkersManyEpochsDrainCleanly) {
  Controller ctl(Config{.workers_per_process = 8});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  StageId map = b.NewStage<DoubleVertex>(StageOptions{.name = "double"}, [](uint32_t) {
    return std::make_unique<DoubleVertex>();
  });
  b.Connect<DoubleVertex, uint64_t>(in, map, 0, [](const uint64_t& x) { return x; });
  std::atomic<uint64_t> count{0};
  ForEach<uint64_t>(b.OutputOf<uint64_t>(map),
                    [&](const Timestamp&, std::vector<uint64_t>& r) {
                      count.fetch_add(r.size());
                    });
  ctl.Start();
  constexpr int kEpochs = 20;
  for (int e = 0; e < kEpochs; ++e) {
    std::vector<uint64_t> data(100);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint64_t>(e * 1000 + static_cast<int>(i));
    }
    handle->OnNext(std::move(data));
  }
  handle->OnCompleted();
  ctl.Join();
  EXPECT_EQ(count.load(), 100u * kEpochs);
}

// ------------------------------------------------------------------------------------
// Exchange-path batching edge cases: the Outlet's flat per-(route, destination) buffers,
// its single-entry timestamp cache, flush re-entrancy, and fan-out copy accounting.
// ------------------------------------------------------------------------------------

// Forwards records one Send() at a time so the Outlet's auto-batching picks the bundles.
class ForwardVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    for (uint64_t& x : batch) {
      output().Send(t, std::move(x));
    }
  }
};

TEST(RuntimeTest, OutletFlushesAtExactlyBatchSize) {
  Controller ctl(Config{.workers_per_process = 1, .batch_size = 8});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  StageId fwd = b.NewStage<ForwardVertex>(
      StageOptions{.name = "forward", .parallelism = 1},
      [](uint32_t) { return std::make_unique<ForwardVertex>(); });
  b.Connect<ForwardVertex, uint64_t>(in, fwd, 0, [](const uint64_t&) { return 0ul; });
  std::mutex mu;
  std::multiset<size_t> bundle_sizes;
  ForEach<uint64_t>(
      b.OutputOf<uint64_t>(fwd),
      [&](const Timestamp&, std::vector<uint64_t>& r) {
        std::lock_guard<std::mutex> lock(mu);
        bundle_sizes.insert(r.size());
      },
      [](const uint64_t&) { return 0ul; });
  ctl.Start();
  std::vector<uint64_t> data(20);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = i;
  }
  handle->OnNext(std::move(data));
  handle->OnCompleted();
  ctl.Join();
  // 20 records to one destination with batch_size 8: two bundles flush eagerly at
  // exactly the batch size; the remainder flushes at end-of-callback.
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(bundle_sizes, (std::multiset<size_t>{4, 8, 8}));
}

// Alternates between two timestamps within one callback. Every switch falls out of the
// Outlet's single-entry timestamp cache and must flush what is buffered; no bundle may
// mix timestamps and no record may be lost.
class AlternatingTimeVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    const Timestamp next(t.epoch + 1);
    for (size_t i = 0; i < batch.size(); ++i) {
      output().Send(i % 2 == 0 ? t : next, batch[i]);
    }
  }
};

TEST(RuntimeTest, OutletInterleavedTimestampsFlushTheCacheAndDeliverAll) {
  Controller ctl(Config{.workers_per_process = 1, .batch_size = 64});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  StageId alt = b.NewStage<AlternatingTimeVertex>(
      StageOptions{.name = "alternate", .parallelism = 1},
      [](uint32_t) { return std::make_unique<AlternatingTimeVertex>(); });
  b.Connect<AlternatingTimeVertex, uint64_t>(in, alt, 0,
                                             [](const uint64_t&) { return 0ul; });
  std::mutex mu;
  std::map<uint64_t, size_t> per_epoch;
  size_t bundles = 0;
  ForEach<uint64_t>(
      b.OutputOf<uint64_t>(alt),
      [&](const Timestamp& t, std::vector<uint64_t>& r) {
        std::lock_guard<std::mutex> lock(mu);
        per_epoch[t.epoch] += r.size();
        ++bundles;
      },
      [](const uint64_t&) { return 0ul; });
  ctl.Start();
  std::vector<uint64_t> data(10);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = i;
  }
  handle->OnNext(std::move(data));
  handle->OnCompleted();
  ctl.Join();
  std::lock_guard<std::mutex> lock(mu);
  // Each of the 10 sends switches timestamp, so each flushes the single buffered record:
  // 10 bundles of one record, alternating between epoch 0 and epoch 1.
  EXPECT_EQ(per_epoch[0], 5u);
  EXPECT_EQ(per_epoch[1], 5u);
  EXPECT_EQ(bundles, 10u);
}

// Re-enters OnRecv from inside an explicit Flush() while the other output still holds
// buffered records; the detach-before-route flush must neither lose nor duplicate them.
class ReentrantEmitVertex final : public Unary2Vertex<uint64_t, uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    for (uint64_t x : batch) {
      output2().Send(t, x);  // stays buffered across the re-entrant frames below
      if (x > 0) {
        output1().Send(t, x - 1);
        output1().Flush();  // possibly re-enters OnRecv with x - 1
      }
    }
  }
};

TEST(RuntimeTest, OutletReentrantSendsDuringFlushKeepEveryRecord) {
  Controller ctl(Config{.workers_per_process = 1});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  LoopContext loop(b, 0);
  FeedbackHandle<uint64_t> fb = loop.NewFeedback<uint64_t>();
  Stream<uint64_t> entered = loop.Ingress<uint64_t>(in);
  StageId body = b.NewStage<ReentrantEmitVertex>(
      StageOptions{.name = "reemit", .depth = 1, .parallelism = 1, .reentrancy = 8},
      [](uint32_t) { return std::make_unique<ReentrantEmitVertex>(); });
  b.Connect<ReentrantEmitVertex, uint64_t>(entered, body);
  b.Connect<ReentrantEmitVertex, uint64_t>(fb.stream(), body);
  fb.ConnectLoop(b.OutputOf<uint64_t>(body, 0));
  Stream<uint64_t> done = loop.Egress<uint64_t>(b.OutputOf<uint64_t>(body, 1));

  std::mutex mu;
  std::multiset<uint64_t> emitted;
  Subscribe<uint64_t>(done, [&](uint64_t, std::vector<uint64_t>& recs) {
    std::lock_guard<std::mutex> lock(mu);
    emitted.insert(recs.begin(), recs.end());
  });

  ctl.Start();
  handle->OnNext({12});
  handle->OnCompleted();
  ctl.Join();
  std::lock_guard<std::mutex> lock(mu);
  std::multiset<uint64_t> expect;
  for (uint64_t v = 0; v <= 12; ++v) {
    expect.insert(v);
  }
  EXPECT_EQ(emitted, expect);
}

TEST(RuntimeTest, OutletMultiRouteFanoutDeliversFullCountToEveryRoute) {
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  StageId fwd = b.NewStage<ForwardVertex>(
      StageOptions{.name = "forward"},
      [](uint32_t) { return std::make_unique<ForwardVertex>(); });
  b.Connect<ForwardVertex, uint64_t>(in, fwd, 0, [](const uint64_t& x) { return x; });
  constexpr int kSinks = 3;
  std::atomic<uint64_t> counts[kSinks] = {};
  std::atomic<uint64_t> sums[kSinks] = {};
  for (int s = 0; s < kSinks; ++s) {
    ForEach<uint64_t>(
        b.OutputOf<uint64_t>(fwd),
        [&, s](const Timestamp&, std::vector<uint64_t>& r) {
          counts[s].fetch_add(r.size());
          for (uint64_t v : r) {
            sums[s].fetch_add(v);
          }
        },
        [](const uint64_t& x) { return x; });
  }
  ctl.Start();
  constexpr uint64_t kRecords = 100;
  std::vector<uint64_t> data(kRecords);
  uint64_t expect_sum = 0;
  for (uint64_t i = 0; i < kRecords; ++i) {
    data[i] = i;
    expect_sum += i;
  }
  handle->OnNext(std::move(data));
  handle->OnCompleted();
  ctl.Join();
  for (int s = 0; s < kSinks; ++s) {
    EXPECT_EQ(counts[s].load(), kRecords) << "sink " << s;
    EXPECT_EQ(sums[s].load(), expect_sum) << "sink " << s;
  }
}

// A record type that counts copy-constructions (moves are free), to pin down the
// move-into-last-connector contract of both fan-out paths.
struct CountedRec {
  uint64_t key = 0;
  static std::atomic<uint64_t> copies;

  CountedRec() = default;
  explicit CountedRec(uint64_t k) : key(k) {}
  CountedRec(const CountedRec& o) : key(o.key) {
    copies.fetch_add(1, std::memory_order_relaxed);
  }
  CountedRec& operator=(const CountedRec& o) {
    key = o.key;
    copies.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  CountedRec(CountedRec&&) noexcept = default;
  CountedRec& operator=(CountedRec&&) noexcept = default;
};
std::atomic<uint64_t> CountedRec::copies{0};

// InputHandle::OnNext fans one epoch out to two consumers: the first connector must get
// a copy of each record, the last must be fed by moves — exactly n copy-constructions.
TEST(RuntimeTest, InputFanoutCopiesOncePerExtraConnectorAndMovesIntoLast) {
  Controller ctl(Config{.workers_per_process = 1});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<CountedRec>(b);
  std::atomic<uint64_t> seen[2] = {};
  for (int s = 0; s < 2; ++s) {
    ForEach<CountedRec>(
        in,
        [&, s](const Timestamp&, std::vector<CountedRec>& r) {
          seen[s].fetch_add(r.size());
        },
        [](const CountedRec& rec) { return rec.key; });
  }
  ctl.Start();
  constexpr uint64_t kRecords = 64;
  std::vector<CountedRec> data;
  data.reserve(kRecords);
  for (uint64_t i = 0; i < kRecords; ++i) {
    data.emplace_back(i);
  }
  CountedRec::copies.store(0);
  handle->OnNext(std::move(data));
  handle->OnCompleted();
  ctl.Join();
  EXPECT_EQ(seen[0].load(), kRecords);
  EXPECT_EQ(seen[1].load(), kRecords);
  // One copy per record for the non-last connector; bucketing and delivery only move.
  EXPECT_EQ(CountedRec::copies.load(), kRecords);
}

// Same contract inside the Outlet: with two routes, Send() copies the record into every
// route but the last, which is fed by the move.
class CountedForwardVertex final : public UnaryVertex<CountedRec, CountedRec> {
 public:
  void OnRecv(const Timestamp& t, std::vector<CountedRec>& batch) override {
    for (CountedRec& r : batch) {
      output().Send(t, std::move(r));
    }
  }
};

TEST(RuntimeTest, OutletFanoutCopiesOncePerExtraRouteAndMovesIntoLast) {
  Controller ctl(Config{.workers_per_process = 1});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<CountedRec>(b);
  StageId fwd = b.NewStage<CountedForwardVertex>(
      StageOptions{.name = "forward", .parallelism = 1},
      [](uint32_t) { return std::make_unique<CountedForwardVertex>(); });
  b.Connect<CountedForwardVertex, CountedRec>(
      in, fwd, 0, [](const CountedRec& r) { return r.key; });
  std::atomic<uint64_t> seen[2] = {};
  for (int s = 0; s < 2; ++s) {
    ForEach<CountedRec>(
        b.OutputOf<CountedRec>(fwd),
        [&, s](const Timestamp&, std::vector<CountedRec>& r) {
          seen[s].fetch_add(r.size());
        },
        [](const CountedRec& rec) { return rec.key; });
  }
  ctl.Start();
  constexpr uint64_t kRecords = 64;
  std::vector<CountedRec> data;
  data.reserve(kRecords);
  for (uint64_t i = 0; i < kRecords; ++i) {
    data.emplace_back(i);
  }
  CountedRec::copies.store(0);
  handle->OnNext(std::move(data));
  handle->OnCompleted();
  ctl.Join();
  EXPECT_EQ(seen[0].load(), kRecords);
  EXPECT_EQ(seen[1].load(), kRecords);
  // The single-connector input path moves; the two-route Outlet fan-out copies exactly
  // once per record (for route 0) and moves into route 1.
  EXPECT_EQ(CountedRec::copies.load(), kRecords);
}

}  // namespace
}  // namespace naiad
