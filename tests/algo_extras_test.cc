// Tests for the Datalog-style reachability library, the §6.4 analytics pipeline, and the
// workload generators.

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <queue>
#include <set>

#include "src/algo/analytics.h"
#include "src/algo/reachability.h"
#include "src/core/io.h"
#include "src/gen/graphs.h"
#include "src/gen/text.h"
#include "src/gen/tweets.h"

namespace naiad {
namespace {

std::set<Edge> RefClosure(const std::vector<Edge>& edges) {
  std::map<uint64_t, std::set<uint64_t>> adj;
  std::set<uint64_t> nodes;
  for (const Edge& e : edges) {
    adj[e.first].insert(e.second);
    nodes.insert(e.first);
  }
  std::set<Edge> out;
  for (uint64_t s : nodes) {
    std::set<uint64_t> seen;
    std::queue<uint64_t> q;
    for (uint64_t n : adj[s]) {
      if (seen.insert(n).second) {
        q.push(n);
      }
    }
    while (!q.empty()) {
      uint64_t n = q.front();
      q.pop();
      out.insert({s, n});
      for (uint64_t m : adj[n]) {
        if (seen.insert(m).second) {
          q.push(m);
        }
      }
    }
  }
  return out;
}

class ReachabilitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReachabilitySweep, TransitiveClosureMatchesBfs) {
  std::vector<Edge> edges = RandomGraph(18, 26, GetParam());
  std::mutex mu;
  std::set<Edge> got;
  Controller ctl(Config{.workers_per_process = 3});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  Subscribe<Edge>(TransitiveClosure(in), [&](uint64_t, std::vector<Edge>& recs) {
    std::lock_guard<std::mutex> lock(mu);
    got.insert(recs.begin(), recs.end());
  });
  ctl.Start();
  handle->OnNext(edges);
  handle->OnCompleted();
  ctl.Join();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(got, RefClosure(edges));
}

TEST_P(ReachabilitySweep, PerEpochClosureIsolatesEpochs) {
  // Two disjoint edge sets in consecutive epochs: the per-epoch closure must not combine
  // paths across them.
  std::mutex mu;
  std::map<uint64_t, std::set<Edge>> got;
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  Subscribe<Edge>(TransitiveClosure(in), [&](uint64_t e, std::vector<Edge>& recs) {
    std::lock_guard<std::mutex> lock(mu);
    got[e].insert(recs.begin(), recs.end());
  });
  ctl.Start();
  handle->OnNext({{1, 2}, {2, 3}});
  handle->OnNext({{3, 4}});  // must NOT produce 1->4 or 2->4
  handle->OnCompleted();
  ctl.Join();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(got[0], (std::set<Edge>{{1, 2}, {1, 3}, {2, 3}}));
  EXPECT_EQ(got[1], (std::set<Edge>{{3, 4}}));
}

TEST_P(ReachabilitySweep, IncrementalClosureDerivesCrossEpochPaths) {
  std::mutex mu;
  std::set<Edge> all;
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  Subscribe<Edge>(TransitiveClosure(in, StateScope::kGlobal),
                  [&](uint64_t, std::vector<Edge>& recs) {
                    std::lock_guard<std::mutex> lock(mu);
                    all.insert(recs.begin(), recs.end());
                  });
  ctl.Start();
  std::vector<Edge> edges = RandomGraph(15, 20, GetParam() + 40);
  const size_t half = edges.size() / 2;
  handle->OnNext(std::vector<Edge>(edges.begin(), edges.begin() + half));
  handle->OnNext(std::vector<Edge>(edges.begin() + half, edges.end()));
  handle->OnCompleted();
  ctl.Join();
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(all, RefClosure(edges));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReachabilitySweep, ::testing::Range<uint64_t>(0, 5));

TEST(AnalyticsTest, TopHashtagFollowsComponentMerges) {
  std::mutex mu;
  std::map<uint64_t, TopTagAnswer> answers;
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [tweets, tweet_handle] = NewInput<Tweet>(b, "tweets");
  auto [queries, query_handle] = NewInput<TopTagQuery>(b, "queries");
  Stream<TopTagAnswer> out =
      StreamingTopHashtags(tweets, queries, QueryFreshness::kConsistent);
  ForEach<TopTagAnswer>(out, [&](const Timestamp&, std::vector<TopTagAnswer>& recs) {
    std::lock_guard<std::mutex> lock(mu);
    for (const TopTagAnswer& a : recs) {
      answers[a.query_id] = a;
    }
  });
  ctl.Start();
  // Epoch 0: users 1 and 2 are separate; 1 tweets #7 twice, 2 tweets #9 once.
  tweet_handle->OnNext({Tweet{1, {7}, {}}, Tweet{1, {7}, {}}, Tweet{2, {9}, {}}});
  query_handle->OnNext({TopTagQuery{2, 0}});
  // Epoch 1: user 1 mentions user 2 — their components merge; #7 dominates the merged one.
  tweet_handle->OnNext({Tweet{1, {}, {2}}});
  query_handle->OnNext({TopTagQuery{2, 1}});
  tweet_handle->OnCompleted();
  query_handle->OnCompleted();
  ctl.Join();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_TRUE(answers.contains(0));
  EXPECT_EQ(answers[0].top_tag, 9u);
  EXPECT_EQ(answers[0].count, 1u);
  ASSERT_TRUE(answers.contains(1));
  EXPECT_EQ(answers[1].top_tag, 7u);
  EXPECT_EQ(answers[1].count, 2u);
  EXPECT_EQ(answers[1].component, 1u);  // merged under min node id
}

TEST(AnalyticsTest, StaleModeAnswersWithoutWaiting) {
  std::mutex mu;
  std::map<uint64_t, TopTagAnswer> answers;
  Controller ctl(Config{.workers_per_process = 2});
  GraphBuilder b(ctl);
  auto [tweets, tweet_handle] = NewInput<Tweet>(b, "tweets");
  auto [queries, query_handle] = NewInput<TopTagQuery>(b, "queries");
  Stream<TopTagAnswer> out = StreamingTopHashtags(tweets, queries, QueryFreshness::kStale);
  Probe probe = ForEach<TopTagAnswer>(out,
                                      [&](const Timestamp&, std::vector<TopTagAnswer>& recs) {
                                        std::lock_guard<std::mutex> lock(mu);
                                        for (const TopTagAnswer& a : recs) {
                                          answers[a.query_id] = a;
                                        }
                                      });
  ctl.Start();
  tweet_handle->OnNext({Tweet{5, {3}, {}}});
  query_handle->OnNext({TopTagQuery{5, 0}});
  tweet_handle->OnCompleted();
  query_handle->OnCompleted();
  ctl.Join();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_TRUE(answers.contains(0));  // answered (possibly from pre-update state)
}

TEST(GenTest, GeneratorsAreDeterministic) {
  EXPECT_EQ(RandomGraph(100, 200, 7), RandomGraph(100, 200, 7));
  EXPECT_NE(RandomGraph(100, 200, 7), RandomGraph(100, 200, 8));
  EXPECT_EQ(PowerLawGraph(100, 200, 1.1, 7), PowerLawGraph(100, 200, 1.1, 7));
  EXPECT_EQ(PowerLawBothGraph(100, 200, 1.1, 7), PowerLawBothGraph(100, 200, 1.1, 7));
  EXPECT_EQ(ZipfCorpus(10, 5, 50, 3), ZipfCorpus(10, 5, 50, 3));
  TweetGenerator a(100, 20, 9);
  TweetGenerator b(100, 20, 9);
  EXPECT_EQ(a.Batch(50), b.Batch(50));
}

TEST(GenTest, ShardsPartitionTheWholeGraph) {
  auto gen = [] { return RandomGraph(50, 333, 12); };
  std::multiset<Edge> all;
  for (uint32_t p = 0; p < 4; ++p) {
    std::vector<Edge> shard = Shard(gen, p, 4);
    all.insert(shard.begin(), shard.end());
  }
  std::vector<Edge> whole = gen();
  EXPECT_EQ(all, std::multiset<Edge>(whole.begin(), whole.end()));
}

TEST(GenTest, PowerLawSkewsInDegree) {
  std::vector<Edge> edges = PowerLawGraph(1000, 20000, 1.2, 5);
  std::map<uint64_t, uint64_t> in_deg;
  for (const Edge& e : edges) {
    ++in_deg[e.second];
  }
  uint64_t max_deg = 0;
  for (auto& [n, d] : in_deg) {
    max_deg = std::max(max_deg, d);
  }
  // Uniform expectation is 20 per node; the Zipf head must dominate it by a wide margin.
  EXPECT_GT(max_deg, 200u);
}

TEST(GenTest, SymmetrizeDoublesAndMirrors) {
  std::vector<Edge> sym = Symmetrize({{1, 2}, {3, 4}});
  EXPECT_EQ(sym.size(), 4u);
  std::multiset<Edge> s(sym.begin(), sym.end());
  EXPECT_TRUE(s.contains({2, 1}));
  EXPECT_TRUE(s.contains({4, 3}));
}

TEST(GenTest, TweetSerdeRoundTrips) {
  TweetGenerator gen(50, 10, 4);
  for (int i = 0; i < 20; ++i) {
    Tweet t = gen.Next();
    std::vector<uint8_t> bytes = EncodeToBytes(t);
    Tweet out;
    ASSERT_TRUE(DecodeFromBytes(std::span<const uint8_t>(bytes), out));
    EXPECT_EQ(out, t);
  }
}

}  // namespace
}  // namespace naiad
