// Distributed stress regressions: repeated multi-process WCC under every progress
// strategy (guarding a once-observed wrong result under kGlobalAcc), multi-epoch
// streaming across the cluster, and large variable-length records over the wire.

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "src/algo/wcc.h"
#include "src/core/io.h"
#include "src/gen/graphs.h"
#include "src/lib/operators.h"
#include "src/net/cluster.h"

namespace naiad {
namespace {

std::map<uint64_t, uint64_t> RefWcc(const std::vector<Edge>& edges) {
  std::map<uint64_t, uint64_t> parent;
  std::function<uint64_t(uint64_t)> find = [&](uint64_t x) {
    parent.try_emplace(x, x);
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : edges) {
    uint64_t a = find(e.first);
    uint64_t b = find(e.second);
    if (a != b) {
      parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::map<uint64_t, uint64_t> out;
  for (const auto& [n, p] : parent) {
    out[n] = find(n);
  }
  return out;
}

class ClusterStress : public ::testing::TestWithParam<ProgressStrategy> {};

TEST_P(ClusterStress, RepeatedDistributedWccIsAlwaysCorrect) {
  const std::vector<Edge> edges = RandomGraph(4000, 12000, 19);
  const std::map<uint64_t, uint64_t> want = RefWcc(edges);
  for (int run = 0; run < 3; ++run) {
    std::mutex mu;
    std::map<uint64_t, uint64_t> labels;
    Cluster::Run(
        ClusterOptions{.processes = 4, .workers_per_process = 1, .strategy = GetParam()},
        [&](Controller& ctl) {
          GraphBuilder b(ctl);
          auto [in, handle] = NewInput<Edge>(b);
          Subscribe<NodeLabel>(ConnectedComponents(in),
                               [&](uint64_t, std::vector<NodeLabel>& recs) {
                                 std::lock_guard<std::mutex> lock(mu);
                                 for (const NodeLabel& nl : recs) {
                                   labels[nl.first] = nl.second;
                                 }
                               });
          ctl.Start();
          handle->OnNext(
              Shard([&] { return edges; }, ctl.config().process_id, 4));
          handle->OnCompleted();
          ctl.Join();
        });
    ASSERT_EQ(labels, want) << "strategy " << ToString(GetParam()) << " run " << run;
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, ClusterStress,
                         ::testing::Values(ProgressStrategy::kDirect,
                                           ProgressStrategy::kGlobalAcc,
                                           ProgressStrategy::kLocalGlobalAcc),
                         [](const ::testing::TestParamInfo<ProgressStrategy>& info) {
                           switch (info.param) {
                             case ProgressStrategy::kDirect:
                               return "Direct";
                             case ProgressStrategy::kGlobalAcc:
                               return "GlobalAcc";
                             case ProgressStrategy::kLocalGlobalAcc:
                               return "LocalGlobalAcc";
                             default:
                               return "Other";
                           }
                         });

TEST(ClusterStreamingTest, ManyEpochsWithInterleavedProbes) {
  // Per-epoch counts across a cluster, with a driver that probes between epochs — the
  // pattern of every streaming benchmark, across real TCP.
  std::mutex mu;
  std::map<uint64_t, uint64_t> per_epoch_total;
  Cluster::Run(
      ClusterOptions{.processes = 2, .workers_per_process = 2},
      [&](Controller& ctl) {
        GraphBuilder b(ctl);
        auto [in, handle] = NewInput<uint64_t>(b);
        auto counts = Count(in, [](const uint64_t& x) { return x % 7; });
        Probe probe = ForEach<std::pair<uint64_t, uint64_t>>(
            counts, [&](const Timestamp& t, std::vector<std::pair<uint64_t, uint64_t>>& r) {
              std::lock_guard<std::mutex> lock(mu);
              for (auto& [k, n] : r) {
                per_epoch_total[t.epoch] += n;
              }
            });
        ctl.Start();
        for (uint64_t e = 0; e < 12; ++e) {
          std::vector<uint64_t> data(200);
          for (size_t i = 0; i < data.size(); ++i) {
            data[i] = e * 1000 + i;
          }
          handle->OnNext(std::move(data));
          if (e >= 1 && ctl.config().process_id == 0) {
            probe.WaitPassed(e - 1);  // interleave completion waits with feeding
          }
        }
        handle->OnCompleted();
        ctl.Join();
      });
  std::lock_guard<std::mutex> lock(mu);
  for (uint64_t e = 0; e < 12; ++e) {
    EXPECT_EQ(per_epoch_total[e], 2 * 200u) << "epoch " << e;
  }
}

TEST(ClusterWireTest, LargeVariableLengthRecordsSurviveTheWire) {
  std::mutex mu;
  std::map<std::string, uint64_t> got;
  Cluster::Run(
      ClusterOptions{.processes = 2, .workers_per_process = 1, .batch_size = 8},
      [&](Controller& ctl) {
        GraphBuilder b(ctl);
        auto [in, handle] = NewInput<std::string>(b);
        // Exchange by content hash so every record crosses a process boundary half the time.
        auto counts = Count(in, [](const std::string& s) { return s; });
        Subscribe<std::pair<std::string, uint64_t>>(
            counts, [&](uint64_t, std::vector<std::pair<std::string, uint64_t>>& recs) {
              std::lock_guard<std::mutex> lock(mu);
              for (auto& [s, n] : recs) {
                got[s] += n;
              }
            });
        ctl.Start();
        std::vector<std::string> data;
        for (int i = 0; i < 50; ++i) {
          data.push_back(std::string(static_cast<size_t>(1) << (i % 16), 'a' + (i % 26)));
        }
        handle->OnNext(std::move(data));
        handle->OnCompleted();
        ctl.Join();
      });
  std::lock_guard<std::mutex> lock(mu);
  uint64_t total = 0;
  for (auto& [s, n] : got) {
    total += n;
  }
  EXPECT_EQ(total, 2 * 50u);  // both processes' records arrived intact
  // Spot-check the biggest payload (32 KB) made it through framing unharmed.
  EXPECT_TRUE(got.contains(std::string(1 << 15, 'a' + (15 % 26))));
}

}  // namespace
}  // namespace naiad
