// Model-checked equivalence of scoped vs flat progress tracking.
//
// The flat ProgressTracker is the §3.3 reference implementation: one global occurrence
// map, full-scan frontier queries. The scoped tracker reorganizes the same state into
// per-loop-scope maps with summarized boundary images. This harness replays randomized
// update schedules — nested loops to depth 2, out-of-order deltas, transiently negative
// counts, cancellations — against both trackers on the same randomized graph and asserts
// that every observable (CanDeliver, FrontierPassed, Count, Empty, ActiveSnapshot) is
// identical after every applied batch, then that both drain to empty.
//
// 100 seeds, sharded 4×25 for ctest parallelism. Replay one seed with --seed=N (see
// EXPERIMENTS.md): shard 0 runs exactly that seed, the others become no-ops.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <vector>

#include "src/base/event_count.h"
#include "src/base/rng.h"
#include "src/core/graph.h"
#include "src/core/progress.h"

namespace naiad {
namespace {

std::optional<uint64_t> g_seed_override;

// A randomized but always-valid loop graph: a root chain, one loop that always contains
// a nested loop (depth 2), and optionally a second independent top-level loop. Random
// knobs vary the chain lengths so scope shapes and Ψ antichains differ per seed; every
// cycle goes through a feedback stage, so Freeze() accepts every generated graph.
struct ModelGraph {
  LogicalGraph g;
  std::vector<Location> locations;  // every stage and connector, for probing/updating

  StageId Stage(uint32_t depth, TimestampAction act, uint64_t feedback_limit = 0) {
    StageDef d;
    d.depth = depth;
    d.action = act;
    d.feedback_limit = feedback_limit;
    StageId s = g.AddStage(std::move(d));
    locations.push_back(Location::Stage(s));
    return s;
  }
  ConnectorId Conn(StageId src, StageId dst) {
    ConnectorDef cd;
    cd.src = src;
    cd.dst = dst;
    ConnectorId c = g.AddConnector(std::move(cd));
    locations.push_back(Location::Connector(c));
    return c;
  }
  // chain of `n` kNone stages at `depth`, connected from `from`; returns the last stage.
  StageId ChainFrom(StageId from, uint32_t depth, uint32_t n) {
    StageId cur = from;
    for (uint32_t i = 0; i < n; ++i) {
      StageId next = Stage(depth, TimestampAction::kNone);
      Conn(cur, next);
      cur = next;
    }
    return cur;
  }
  // A loop hanging off `from` (at `depth-1`): ingress, body chain, feedback cycle,
  // egress. `nest` adds an inner loop between two body stages. Returns the egress's
  // downstream stage at depth-1.
  StageId Loop(StageId from, uint32_t depth, uint32_t body_len, bool nest, Rng& rng) {
    StageId ingress = Stage(depth - 1, TimestampAction::kIngress);
    Conn(from, ingress);
    StageId head = Stage(depth, TimestampAction::kNone);
    Conn(ingress, head);
    StageId tail = ChainFrom(head, depth, body_len);
    if (nest) {
      tail = Loop(tail, depth + 1, 1 + static_cast<uint32_t>(rng.Below(2)), false, rng);
    }
    StageId fb = Stage(depth, TimestampAction::kFeedback, /*feedback_limit=*/16);
    Conn(tail, fb);
    Conn(fb, head);
    StageId egress = Stage(depth, TimestampAction::kEgress);
    Conn(tail, egress);
    StageId after = Stage(depth - 1, TimestampAction::kNone);
    Conn(egress, after);
    return after;
  }

  explicit ModelGraph(uint64_t seed) {
    Rng rng(HashCombine(seed, 0x4d4f444cULL));  // "MODL"
    StageId in = Stage(0, TimestampAction::kNone);
    StageId cur = ChainFrom(in, 0, static_cast<uint32_t>(rng.Below(3)));
    cur = Loop(cur, 1, 1 + static_cast<uint32_t>(rng.Below(2)), /*nest=*/true, rng);
    if (rng.Below(2) == 0) {
      cur = Loop(cur, 1, 1, /*nest=*/false, rng);
    }
    ChainFrom(cur, 0, 1 + static_cast<uint32_t>(rng.Below(2)));
    g.Freeze();
  }
};

Pointstamp RandomPoint(const ModelGraph& mg, Rng& rng) {
  const Location loc = mg.locations[rng.Below(mg.locations.size())];
  const uint32_t depth = mg.g.LocationDepth(loc);
  Timestamp t(rng.Below(3));
  for (uint32_t d = 0; d < depth; ++d) {
    t = t.Pushed(rng.Below(3));
  }
  return Pointstamp{t, loc};
}

// The probe set: every location × a small grid of times at its depth. Frontier answers
// must match at *every* probe after *every* batch — not just at the points updated.
std::vector<Pointstamp> ProbePoints(const ModelGraph& mg) {
  std::vector<Pointstamp> probes;
  for (const Location& loc : mg.locations) {
    const uint32_t depth = mg.g.LocationDepth(loc);
    for (uint64_t e = 0; e < 2; ++e) {
      const uint32_t combos = 1u << depth;  // coords from {0,2}^depth
      for (uint32_t bits = 0; bits < combos; ++bits) {
        Timestamp t(e);
        for (uint32_t d = 0; d < depth; ++d) {
          t = t.Pushed((bits >> d & 1) != 0 ? 2 : 0);
        }
        probes.push_back(Pointstamp{t, loc});
      }
    }
  }
  return probes;
}

void CheckSeed(uint64_t seed) {
  const ModelGraph mg(seed);
  EventCount ev_flat, ev_scoped;
  ProgressTracker flat(&mg.g, &ev_flat, ProgressScoping::kFlat);
  ProgressTracker scoped(&mg.g, &ev_scoped, ProgressScoping::kScoped);
  ASSERT_GE(mg.g.num_scopes(), 3u) << "model graph must nest to depth 2";

  const std::vector<Pointstamp> probes = ProbePoints(mg);
  Rng rng(HashCombine(seed, 0x53434844ULL));  // "SCHD"
  std::map<Pointstamp, int64_t> net;  // cumulative deltas, for the final drain

  const uint32_t batches = 30 + static_cast<uint32_t>(rng.Below(11));
  for (uint32_t b = 0; b <= batches; ++b) {
    std::vector<ProgressUpdate> batch;
    if (b < batches) {
      const uint32_t sz = 1 + static_cast<uint32_t>(rng.Below(8));
      for (uint32_t i = 0; i < sz; ++i) {
        // Mostly fresh ±1s (negatives may land before their positives — the transient
        // negative case); sometimes retire an earlier positive so activity drains and
        // frontiers genuinely move during the schedule.
        if (rng.Below(3) == 0 && !net.empty()) {
          auto it = net.begin();
          std::advance(it, rng.Below(net.size()));
          if (it->second > 0) {
            batch.push_back(ProgressUpdate{it->first, -1});
            continue;
          }
        }
        const int64_t delta = rng.Below(4) == 0 ? -1 : +1;
        batch.push_back(ProgressUpdate{RandomPoint(mg, rng), delta});
      }
    } else {
      // Final drain: negate the cumulative sum so both trackers must return to empty
      // (and every boundary image refcount must unwind to zero without tripping the
      // negative-refcount check).
      for (const auto& [p, d] : net) {
        if (d != 0) {
          batch.push_back(ProgressUpdate{p, -d});
        }
      }
    }
    for (const ProgressUpdate& u : batch) {
      net[u.point] += u.delta;
    }
    flat.Apply(batch);
    scoped.Apply(batch);

    ASSERT_EQ(flat.Empty(), scoped.Empty()) << "seed " << seed << " batch " << b;
    ASSERT_EQ(flat.ActiveSnapshot(), scoped.ActiveSnapshot())
        << "seed " << seed << " batch " << b;
    for (const Pointstamp& p : probes) {
      ASSERT_EQ(flat.CanDeliver(p), scoped.CanDeliver(p))
          << "CanDeliver(" << p.ToString() << ") seed " << seed << " batch " << b
          << "; replay with --seed=" << seed;
      ASSERT_EQ(flat.FrontierPassed(p), scoped.FrontierPassed(p))
          << "FrontierPassed(" << p.ToString() << ") seed " << seed << " batch " << b
          << "; replay with --seed=" << seed;
      ASSERT_EQ(flat.Count(p), scoped.Count(p))
          << "Count(" << p.ToString() << ") seed " << seed << " batch " << b;
    }
  }
  ASSERT_TRUE(flat.Empty());
  ASSERT_TRUE(scoped.Empty());
  // The scoped tracker did organize state hierarchically: loop-internal activity existed
  // (the schedule hits every location with high probability), so boundary images flowed.
  EXPECT_GT(scoped.ScopingStats().boundary_updates, 0u) << "seed " << seed;
  EXPECT_EQ(flat.ScopingStats().boundary_updates, 0u);
}

class ScopedModelSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScopedModelSweep, ScopedMatchesFlatOnRandomSchedules) {
  const uint64_t shard = GetParam();
  if (g_seed_override.has_value()) {
    if (shard == 0) {
      CheckSeed(*g_seed_override);
    }
    return;
  }
  for (uint64_t i = 0; i < 25; ++i) {
    ASSERT_NO_FATAL_FAILURE(CheckSeed(shard * 25 + i));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScopedModelSweep, ::testing::Values(0u, 1u, 2u, 3u),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "Shard" + std::to_string(info.param);
                         });

// Deterministic spot-checks of the scope tree itself, on the fixture topology every
// other progress test uses (in → ingress → body ↔ feedback → egress → out).
TEST(ScopeTreeTest, LoopGraphScopesAndProjections) {
  ModelGraph mg(/*seed=*/1);
  const LogicalGraph& g = mg.g;
  // Root scope holds every depth-0 location and is its own parent.
  EXPECT_EQ(g.ScopeParent(0), 0u);
  EXPECT_EQ(g.ScopeDepth(0), 0u);
  uint32_t max_depth = 0;
  for (const Location& l : mg.locations) {
    const uint32_t sc = g.ScopeOf(l);
    EXPECT_EQ(g.ScopeDepth(sc), g.LocationDepth(l)) << l.ToString();
    if (sc != 0) {
      // Walking parents reaches the root in depth steps.
      EXPECT_EQ(g.ScopeDepth(g.ScopeParent(sc)) + 1, g.ScopeDepth(sc));
      // Every in-scope location projects onto at least one exit of its scope (all loops
      // in the model graph have an egress), and the projected location lives one scope
      // up with summaries that strip exactly one loop coordinate.
      const auto& projs = g.Projections(l);
      EXPECT_FALSE(projs.empty()) << l.ToString();
      for (const BoundaryProjection& bp : projs) {
        EXPECT_EQ(g.ScopeOf(bp.exit), g.ScopeParent(sc));
        for (const PathSummary& s : bp.summaries.elements()) {
          Timestamp t(0);
          for (uint32_t d = 0; d < g.LocationDepth(l); ++d) {
            t = t.Pushed(0);
          }
          EXPECT_EQ(s.Apply(t).depth(), g.LocationDepth(l) - 1);
        }
      }
    } else {
      EXPECT_TRUE(g.Projections(l).empty()) << l.ToString();
    }
    max_depth = std::max(max_depth, g.ScopeDepth(g.ScopeOf(l)));
  }
  EXPECT_EQ(max_depth, 2u);
}

}  // namespace
}  // namespace naiad

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);  // strips gtest flags, leaves ours
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      naiad::g_seed_override = std::strtoull(argv[i] + 7, nullptr, 0);
      std::fprintf(stderr, "progress_scoped_model_test: replaying seed %llu only\n",
                   static_cast<unsigned long long>(*naiad::g_seed_override));
    }
  }
  return RUN_ALL_TESTS();
}
