// Property test: on randomly generated *structured* dataflow graphs, the worklist-computed
// summary matrix must agree with brute-force path enumeration — for every location pair,
// Ψ[l1,l2] applied to sample timestamps yields exactly the minimum over all concrete paths
// (up to a cycle-unrolling bound).

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <queue>
#include <vector>

#include "src/base/rng.h"
#include "src/core/graph.h"

namespace naiad {
namespace {

// A random nest of loop contexts with pass-through stages, built the same way the typed
// layer would build it.
struct RandomStructuredGraph {
  LogicalGraph g;
  std::vector<uint32_t> stage_depth;

  explicit RandomStructuredGraph(uint64_t seed) {
    Rng rng(seed);
    StageId cur = AddStage(0, TimestampAction::kNone);
    std::vector<StageId> loop_heads;   // body entry per open loop
    std::vector<uint32_t> head_depth;
    uint32_t depth = 0;
    const int ops = 8 + static_cast<int>(rng.Below(8));
    for (int i = 0; i < ops; ++i) {
      switch (rng.Below(4)) {
        case 0: {  // linear stage
          StageId next = AddStage(depth, TimestampAction::kNone);
          Conn(cur, next);
          cur = next;
          break;
        }
        case 1: {  // open a loop
          if (depth + 2 >= kMaxLoopDepth) {
            break;
          }
          StageId ingress = AddStage(depth, TimestampAction::kIngress);
          Conn(cur, ingress);
          StageId body = AddStage(depth + 1, TimestampAction::kNone);
          Conn(ingress, body);
          loop_heads.push_back(body);
          head_depth.push_back(depth + 1);
          ++depth;
          cur = body;
          break;
        }
        case 2: {  // close the innermost loop with feedback + egress
          if (loop_heads.empty()) {
            break;
          }
          StageId fb = AddStage(depth, TimestampAction::kFeedback);
          Conn(cur, fb);
          Conn(fb, loop_heads.back());
          StageId egress = AddStage(depth, TimestampAction::kEgress);
          Conn(cur, egress);
          loop_heads.pop_back();
          head_depth.pop_back();
          --depth;
          cur = egress;
          break;
        }
        default: {  // feedback-only inner cycle on the current stage
          if (depth == 0) {
            break;
          }
          StageId fb = AddStage(depth, TimestampAction::kFeedback);
          Conn(cur, fb);
          Conn(fb, cur);
          break;
        }
      }
    }
    // Close any loops left open.
    while (!loop_heads.empty()) {
      StageId fb = AddStage(depth, TimestampAction::kFeedback);
      Conn(cur, fb);
      Conn(fb, loop_heads.back());
      StageId egress = AddStage(depth, TimestampAction::kEgress);
      Conn(cur, egress);
      loop_heads.pop_back();
      --depth;
      cur = egress;
    }
    g.Freeze();
  }

  StageId AddStage(uint32_t depth, TimestampAction action) {
    StageDef d;
    d.depth = depth;
    d.action = action;
    stage_depth.push_back(depth);
    return g.AddStage(std::move(d));
  }
  void Conn(StageId a, StageId b) {
    ConnectorDef c;
    c.src = a;
    c.dst = b;
    g.AddConnector(std::move(c));
  }

  // Brute force: one bounded BFS from (s1, t) recording, per reachable stage, the
  // total-order minimum adjusted timestamp. Cycle unrolling is pruned by capping loop
  // counters: increments only grow timestamps, so minima need few unrollings.
  std::map<StageId, Timestamp> BruteForceAll(StageId s1, const Timestamp& t) const {
    struct Item {
      StageId at;
      Timestamp time;
    };
    const uint64_t coord_cap = 8;
    std::set<std::pair<StageId, Timestamp>> seen;
    std::map<StageId, Timestamp> best;
    std::queue<Item> q;
    q.push({s1, t});
    seen.insert({s1, t});
    while (!q.empty()) {
      Item it = q.front();
      q.pop();
      auto [bit, fresh] = best.try_emplace(it.at, it.time);
      if (!fresh && it.time < bit->second) {
        bit->second = it.time;
      }
      Timestamp adj = g.stage(it.at).ActionSummary().Apply(it.time);
      bool capped = false;
      for (uint64_t c : adj.coords) {
        capped |= c > coord_cap;
      }
      if (capped) {
        continue;
      }
      for (const auto& port : g.stage(it.at).outputs) {
        for (ConnectorId c : port) {
          if (seen.insert({g.connector(c).dst, adj}).second) {
            q.push({g.connector(c).dst, adj});
          }
        }
      }
    }
    return best;
  }
};

class SummaryMatrixProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SummaryMatrixProperty, MatrixAgreesWithPathEnumeration) {
  RandomStructuredGraph rsg(GetParam());
  Rng rng(GetParam() ^ 0xf00dULL);
  const uint32_t n = rsg.g.num_stages();
  for (StageId s1 = 0; s1 < n; ++s1) {
    // Sample a timestamp at s1's depth.
    Timestamp t(rng.Below(2));
    t.coords.resize(rsg.stage_depth[s1]);
    for (uint32_t i = 0; i < t.coords.size(); ++i) {
      t.coords[i] = rng.Below(3);
    }
    std::map<StageId, Timestamp> brute = rsg.BruteForceAll(s1, t);
    for (StageId s2 = 0; s2 < n; ++s2) {
      const SummaryAntichain& ac = rsg.g.Summaries(Location::Stage(s1), Location::Stage(s2));
      auto bit = brute.find(s2);
      if (bit == brute.end()) {
        EXPECT_TRUE(ac.Empty()) << "matrix has a summary but no path exists: " << s1
                                << "->" << s2;
        continue;
      }
      ASSERT_FALSE(ac.Empty()) << "path exists but matrix empty: " << s1 << "->" << s2;
      // The matrix must (a) claim could-result-in at the brute-force minimum, and
      // (b) not claim anything strictly earlier in the final coordinate.
      EXPECT_TRUE(ac.CouldResultIn(t, bit->second))
          << "s1=" << s1 << " s2=" << s2 << " t=" << t.ToString()
          << " brute=" << bit->second.ToString();
      Timestamp earlier = bit->second;
      bool have_earlier = false;
      if (!earlier.coords.empty() && earlier.coords.back() > 0) {
        earlier.coords.back() -= 1;
        have_earlier = true;
      } else if (earlier.coords.empty() && earlier.epoch > 0) {
        earlier.epoch -= 1;
        have_earlier = true;
      }
      if (have_earlier) {
        EXPECT_FALSE(ac.CouldResultIn(t, earlier))
            << "matrix too permissive: s1=" << s1 << " s2=" << s2 << " t=" << t.ToString()
            << " earlier=" << earlier.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryMatrixProperty, ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace naiad
