// Figure 6c (§5.3): progress-tracking protocol traffic under the §3.3 optimizations.
//
// Runs the same weakly-connected-components computation on a random graph under each
// accumulation strategy and reports the bytes of progress-protocol traffic sent over the
// wire. Paper's shape: accumulation cuts traffic by one to two orders of magnitude
// (None >> GlobalAcc, LocalAcc > Local+GlobalAcc), with no significant change in results
// or (for local accumulation) running time.

#include <mutex>

#include "bench/bench_util.h"
#include "src/algo/wcc.h"
#include "src/core/io.h"
#include "src/gen/graphs.h"
#include "src/net/cluster.h"

namespace naiad {
namespace {

struct Outcome {
  ClusterStats stats;
  uint64_t components = 0;
};

Outcome RunWcc(ProgressStrategy strategy, uint64_t nodes, uint64_t edges) {
  Outcome out;
  std::mutex mu;
  std::set<uint64_t> components;
  out.stats = Cluster::Run(
      ClusterOptions{.processes = 4, .workers_per_process = 1, .strategy = strategy},
      [&](Controller& ctl) {
        GraphBuilder b(ctl);
        auto [in, handle] = NewInput<Edge>(b);
        Subscribe<NodeLabel>(ConnectedComponents(in),
                             [&](uint64_t, std::vector<NodeLabel>& recs) {
                               std::lock_guard<std::mutex> lock(mu);
                               for (const NodeLabel& nl : recs) {
                                 components.insert(nl.second);
                               }
                             });
        ctl.Start();
        // SPMD: each process generates its shard of the same graph.
        const uint32_t pid = ctl.config().process_id;
        handle->OnNext(Shard([&] { return RandomGraph(nodes, edges, 11); }, pid, 4));
        handle->OnCompleted();
        ctl.Join();
      });
  out.components = components.size();
  return out;
}

}  // namespace
}  // namespace naiad

int main() {
  using namespace naiad;
  bench::Header("Fig. 6c", "progress protocol optimizations (§5.3, §3.3)",
                "accumulating updates (per-process and/or at a central accumulator) "
                "reduces protocol traffic by 1-2 orders of magnitude on a WCC run");
  constexpr uint64_t kNodes = 20000;
  constexpr uint64_t kEdges = 60000;
  bench::Row("WCC on a random graph: %llu nodes, %llu edges; 4 processes x 1 worker",
             static_cast<unsigned long long>(kNodes),
             static_cast<unsigned long long>(kEdges));
  bench::Row("%-18s %-16s %-14s %-12s %-12s", "strategy", "progress KB", "frames",
             "seconds", "components");
  double none_kb = 0;
  for (ProgressStrategy s :
       {ProgressStrategy::kDirect, ProgressStrategy::kGlobalAcc, ProgressStrategy::kLocalAcc,
        ProgressStrategy::kLocalGlobalAcc}) {
    Outcome o = RunWcc(s, kNodes, kEdges);
    const double kb = o.stats.progress_bytes / 1024.0;
    if (s == ProgressStrategy::kDirect) {
      none_kb = kb;
    }
    bench::Row("%-18s %-16.1f %-14llu %-12.2f %-12llu", ToString(s), kb,
               static_cast<unsigned long long>(o.stats.progress_frames),
               o.stats.elapsed_seconds, static_cast<unsigned long long>(o.components));
  }
  bench::Row("(reduction factors are relative to 'None' = %.1f KB)", none_kb);
  return 0;
}
