// Figure 6c (§5.3): progress-tracking protocol traffic under the §3.3 optimizations.
//
// Runs the same weakly-connected-components computation on a random graph under each
// accumulation strategy and reports the bytes of progress-protocol traffic sent over the
// wire. Paper's shape: accumulation cuts traffic by one to two orders of magnitude
// (None >> GlobalAcc, LocalAcc > Local+GlobalAcc), with no significant change in results
// or (for local accumulation) running time.
//
// The bench additionally breaks progress traffic down by scope (WCC's label-propagation
// loop is a scope nested in the root scope): `cross KB` is root-space wire bytes plus
// summarized boundary bytes — the traffic that must cross scope boundaries — while
// `in-scope KB` is loop-internal traffic that a per-scope deployment keeps local. Under
// ProgressScoping::kScoped the tracker maintains per-scope occurrence maps and only
// boundary-crossing summaries reach the parent, so cross KB drops while flat-mode totals
// stay unchanged. Rows land in BENCH_fig6c.json keyed by NAIAD_BENCH_LABEL; set
// NAIAD_PROGRESS_SCOPING=flat|scoped to restrict to one mode (used to record the
// checked-in pre/post baselines).

#include <cstdlib>
#include <mutex>

#include "bench/bench_util.h"
#include "src/algo/wcc.h"
#include "src/core/io.h"
#include "src/gen/graphs.h"
#include "src/net/cluster.h"

namespace naiad {
namespace {

struct Outcome {
  ClusterStats stats;
  uint64_t components = 0;
};

Outcome RunWcc(ProgressStrategy strategy, ProgressScoping scoping, uint64_t nodes,
               uint64_t edges) {
  Outcome out;
  std::mutex mu;
  std::set<uint64_t> components;
  out.stats = Cluster::Run(
      ClusterOptions{.processes = 4,
                     .workers_per_process = 1,
                     .strategy = strategy,
                     .scoping = scoping},
      [&](Controller& ctl) {
        GraphBuilder b(ctl);
        auto [in, handle] = NewInput<Edge>(b);
        Subscribe<NodeLabel>(ConnectedComponents(in),
                             [&](uint64_t, std::vector<NodeLabel>& recs) {
                               std::lock_guard<std::mutex> lock(mu);
                               for (const NodeLabel& nl : recs) {
                                 components.insert(nl.second);
                               }
                             });
        ctl.Start();
        // SPMD: each process generates its shard of the same graph.
        const uint32_t pid = ctl.config().process_id;
        handle->OnNext(Shard([&] { return RandomGraph(nodes, edges, 11); }, pid, 4));
        handle->OnCompleted();
        ctl.Join();
      });
  out.components = components.size();
  return out;
}

}  // namespace
}  // namespace naiad

int main() {
  using namespace naiad;
  bench::Header("Fig. 6c", "progress protocol optimizations (§5.3, §3.3)",
                "accumulating updates (per-process and/or at a central accumulator) "
                "reduces protocol traffic by 1-2 orders of magnitude on a WCC run");
  constexpr uint64_t kNodes = 20000;
  constexpr uint64_t kEdges = 60000;
  bench::Row("WCC on a random graph: %llu nodes, %llu edges; 4 processes x 1 worker",
             static_cast<unsigned long long>(kNodes),
             static_cast<unsigned long long>(kEdges));

  bench::JsonReport report("fig6c");
  report.Config("nodes", static_cast<double>(kNodes));
  report.Config("edges", static_cast<double>(kEdges));
  report.Config("processes", 4.0);

  // NAIAD_PROGRESS_SCOPING restricts the sweep to one tracking mode; by default both run
  // so the table shows the scoped/flat contrast side by side.
  const char* only = std::getenv("NAIAD_PROGRESS_SCOPING");
  bench::Row("%-18s %-8s %-12s %-10s %-12s %-10s %-9s %-9s %-9s %-11s", "strategy",
             "scoping", "progress KB", "cross KB", "in-scope KB", "bnd upd", "occ peak",
             "occ root", "seconds", "components");
  double none_kb = 0;
  for (ProgressScoping scoping : {ProgressScoping::kFlat, ProgressScoping::kScoped}) {
    if (only != nullptr && std::string(only) != ToString(scoping)) {
      continue;
    }
    for (ProgressStrategy s :
         {ProgressStrategy::kDirect, ProgressStrategy::kGlobalAcc,
          ProgressStrategy::kLocalAcc, ProgressStrategy::kLocalGlobalAcc}) {
      Outcome o = RunWcc(s, scoping, kNodes, kEdges);
      const double kb = o.stats.progress_bytes / 1024.0;
      const bench::ScopeAccounting acc = bench::ScopeAccounting::From(o.stats);
      if (s == ProgressStrategy::kDirect && scoping == ProgressScoping::kFlat) {
        none_kb = kb;
      }
      bench::Row("%-18s %-8s %-12.1f %-10.1f %-12.1f %-10.0f %-9.0f %-9.0f %-9.2f %-11llu",
                 ToString(s), ToString(scoping), kb, acc.cross_total_kb, acc.in_scope_kb,
                 acc.boundary_updates, acc.occ_map_peak, acc.occ_map_peak_root,
                 o.stats.elapsed_seconds, static_cast<unsigned long long>(o.components));
      report.NewRow();
      report.Str("strategy", ToString(s));
      report.Str("scoping", ToString(scoping));
      report.Num("progress_kb", kb);
      acc.AddTo(report);
      report.Num("frames", static_cast<double>(o.stats.progress_frames));
      report.Num("seconds", o.stats.elapsed_seconds);
      report.Num("components", static_cast<double>(o.components));
    }
  }
  if (none_kb > 0) {
    bench::Row("(reduction factors are relative to 'None' flat = %.1f KB)", none_kb);
  }
  report.Write();
  return 0;
}
