// Figure 7c (§6.3): k-exposure on a tweet stream under three fault-tolerance modes.
//
// Paper's numbers on 32 computers: 482,988 tweets/s with no fault tolerance, 322,439 t/s
// with checkpoints every 100 epochs, 273,741 t/s with continual logging; median response
// latencies 40 / 40 / 85 ms, with checkpointing visible only in the tail. Expected shape:
// throughput None > Checkpoint > Logging; logging shifts the whole latency distribution,
// checkpointing only the tail.

#include <mutex>

#include "bench/bench_util.h"
#include "src/algo/kexposure.h"
#include "src/base/stopwatch.h"
#include "src/core/io.h"
#include "src/ft/checkpoint.h"
#include "src/ft/log.h"
#include "src/gen/graphs.h"
#include "src/gen/tweets.h"

namespace naiad {
namespace {

enum class FtMode { kNone, kCheckpoint, kLogging };

const char* Name(FtMode m) {
  switch (m) {
    case FtMode::kNone:
      return "None";
    case FtMode::kCheckpoint:
      return "Checkpoint";
    case FtMode::kLogging:
      return "Logging";
  }
  return "?";
}

struct Outcome {
  double tweets_per_sec = 0;
  SampleStats latencies_ms;
};

Outcome Run(FtMode mode) {
  constexpr uint64_t kEpochs = 40;
  constexpr size_t kTweetsPerEpoch = 2000;
  constexpr uint64_t kCheckpointEvery = 10;

  Outcome out;
  Controller ctl(Config{.workers_per_process = 4});
  GraphBuilder b(ctl);
  auto [tweets_raw, tweet_handle] = NewInput<Tweet>(b, "tweets");
  auto [followers, follower_handle] = NewInput<Edge>(b, "followers");
  Stream<Tweet> tweets = tweets_raw;
  std::shared_ptr<LogWriter> log;
  if (mode == FtMode::kLogging) {
    log = std::make_shared<LogWriter>("/tmp/naiad_kexposure.log");
    tweets = Logged<Tweet>(tweets_raw, log);
  }
  std::atomic<uint64_t> exposures{0};
  Probe probe = ForEach<TagExposure>(KExposure(tweets, followers),
                                     [&](const Timestamp&, std::vector<TagExposure>& recs) {
                                       for (const TagExposure& te : recs) {
                                         exposures.fetch_add(te.second);
                                       }
                                     });
  ctl.Start();
  // Static follower graph in epoch 0 (accumulating join build side).
  follower_handle->OnNext(PowerLawGraph(20000, 100000, 1.1, 5));
  follower_handle->OnCompleted();
  TweetGenerator gen(20000, 200, 6);
  Stopwatch total;
  for (uint64_t e = 0; e < kEpochs; ++e) {
    Stopwatch epoch_sw;
    tweet_handle->OnNext(gen.Batch(kTweetsPerEpoch));
    probe.WaitPassed(e);
    out.latencies_ms.Add(epoch_sw.ElapsedMillis());
    if (mode == FtMode::kCheckpoint && (e + 1) % kCheckpointEvery == 0) {
      std::vector<uint8_t> image = CheckpointProcess(ctl);
      (void)image.size();
    }
  }
  const double secs = total.ElapsedSeconds();
  tweet_handle->OnCompleted();
  ctl.Join();
  out.tweets_per_sec = static_cast<double>(kEpochs * kTweetsPerEpoch) / secs;
  return out;
}

}  // namespace
}  // namespace naiad

int main() {
  using namespace naiad;
  bench::Header("Fig. 7c", "k-exposure with fault tolerance (§6.3)",
                "throughput: None (483k t/s) > Checkpoint (322k) > Logging (274k); "
                "logging raises median latency (40 -> 85 ms), checkpoints only the tail");
  bench::Row("tweet stream: 40 epochs x 2000 tweets; follower graph: 100k edges; "
             "checkpoint every 10 epochs");
  bench::Row("%-12s %-14s %-12s %-12s %-12s %-12s", "mode", "tweets/s", "p50 (ms)",
             "p75", "p95", "max");
  for (FtMode mode : {FtMode::kNone, FtMode::kCheckpoint, FtMode::kLogging}) {
    Outcome o = Run(mode);
    bench::Row("%-12s %-14.0f %-12.2f %-12.2f %-12.2f %-12.2f", Name(mode),
               o.tweets_per_sec, o.latencies_ms.Median(), o.latencies_ms.Percentile(75),
               o.latencies_ms.Percentile(95), o.latencies_ms.Max());
  }
  return 0;
}
