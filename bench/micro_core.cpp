// Micro-benchmarks for the mechanisms §3 engineers around: serialization, progress
// tracking (frontier evaluation vs active-set size), queue hand-off, and eventcount
// wakeups. These quantify the design choices DESIGN.md calls out (O(active²) frontier
// scans, batched MPSC drains, buffered progress flushes).

#include <benchmark/benchmark.h>

#include <thread>

#include "src/base/event_count.h"
#include "src/base/mpsc_queue.h"
#include "src/core/graph.h"
#include "src/core/progress.h"
#include "src/ser/codec.h"

namespace naiad {
namespace {

void BM_CodecEncodeU64Vector(benchmark::State& state) {
  std::vector<uint64_t> payload(static_cast<size_t>(state.range(0)), 42);
  for (auto _ : state) {
    ByteWriter w;
    Codec<std::vector<uint64_t>>::Encode(w, payload);
    benchmark::DoNotOptimize(w.buffer().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0) * 8);
}
BENCHMARK(BM_CodecEncodeU64Vector)->Arg(64)->Arg(4096);

void BM_CodecRoundTripRecords(benchmark::State& state) {
  std::vector<std::pair<uint64_t, uint64_t>> recs(1024, {7, 9});
  for (auto _ : state) {
    ByteWriter w;
    Codec<decltype(recs)>::Encode(w, recs);
    ByteReader r(w.buffer());
    decltype(recs) out;
    Codec<decltype(recs)>::Decode(r, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_CodecRoundTripRecords);

void BM_TimestampSerde(benchmark::State& state) {
  Timestamp t(42, {1, 2, 3});
  for (auto _ : state) {
    ByteWriter w;
    t.Encode(w);
    ByteReader r(w.buffer());
    Timestamp out;
    out.Decode(r);
    benchmark::DoNotOptimize(out.epoch);
  }
}
BENCHMARK(BM_TimestampSerde);

// Frontier query cost as a function of active-pointstamp count (the O(active^2) design).
void BM_FrontierCanDeliver(benchmark::State& state) {
  LogicalGraph g;
  StageDef in_def;
  StageId in = g.AddStage(std::move(in_def));
  StageDef ing;
  ing.action = TimestampAction::kIngress;
  StageId ingress = g.AddStage(std::move(ing));
  StageDef body_def;
  body_def.depth = 1;
  StageId body = g.AddStage(std::move(body_def));
  StageDef fb;
  fb.depth = 1;
  fb.action = TimestampAction::kFeedback;
  StageId feedback = g.AddStage(std::move(fb));
  auto conn = [&](StageId a, StageId b) {
    ConnectorDef c;
    c.src = a;
    c.dst = b;
    g.AddConnector(std::move(c));
  };
  conn(in, ingress);
  conn(ingress, body);
  conn(body, feedback);
  conn(feedback, body);
  g.Freeze();

  EventCount ev;
  ProgressTracker tracker(&g, &ev);
  std::vector<ProgressUpdate> ups;
  const int64_t actives = state.range(0);
  for (int64_t i = 0; i < actives; ++i) {
    ups.push_back({{Timestamp(0, {static_cast<uint64_t>(i)}), Location::Stage(body)}, +1});
  }
  tracker.Apply(ups);
  const Pointstamp probe{Timestamp(0, {0}), Location::Stage(body)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.CanDeliver(probe));
  }
}
BENCHMARK(BM_FrontierCanDeliver)->Arg(4)->Arg(32)->Arg(256);

void BM_ProgressBufferFlushCombining(benchmark::State& state) {
  const int64_t updates = state.range(0);
  for (auto _ : state) {
    ProgressBuffer buf;
    for (int64_t i = 0; i < updates; ++i) {
      buf.Add({Timestamp(0), Location::Connector(static_cast<uint32_t>(i % 8))}, +1);
      buf.Add({Timestamp(0), Location::Connector(static_cast<uint32_t>(i % 8))}, -1);
    }
    benchmark::DoNotOptimize(buf.Take());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * updates * 2);
}
BENCHMARK(BM_ProgressBufferFlushCombining)->Arg(256);

void BM_MpscQueueHandoff(benchmark::State& state) {
  MpscQueue<uint64_t> q;
  std::vector<uint64_t> out;
  for (auto _ : state) {
    for (int i = 0; i < 128; ++i) {
      q.Push(static_cast<uint64_t>(i));
    }
    out.clear();
    q.DrainInto(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_MpscQueueHandoff);

void BM_EventCountSignal(benchmark::State& state) {
  EventCount ev;
  for (auto _ : state) {
    EventCount::Ticket t = ev.PrepareWait();
    ev.NotifyAll();
    ev.CommitWait(t, std::chrono::microseconds(0));
  }
}
BENCHMARK(BM_EventCountSignal);

}  // namespace
}  // namespace naiad

BENCHMARK_MAIN();
