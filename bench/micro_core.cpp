// Micro-benchmarks for the mechanisms §3 engineers around: serialization, progress
// tracking (frontier evaluation vs active-set size), queue hand-off, eventcount
// wakeups, and the SendBy→OnRecv exchange path (Outlet routing buffers, destination
// bucketing, fan-out). These quantify the design choices DESIGN.md calls out (flat
// routing buffers, O(active²) frontier scans, batched MPSC drains, buffered progress
// flushes). Results are also written to BENCH_micro_core.json (see bench_util.h).

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "src/base/event_count.h"
#include "src/base/mpsc_queue.h"
#include "src/core/graph.h"
#include "src/core/io.h"
#include "src/core/progress.h"
#include "src/core/stage.h"
#include "src/ser/codec.h"
#include "src/ser/columns.h"

namespace naiad {
namespace {

void BM_CodecEncodeU64Vector(benchmark::State& state) {
  std::vector<uint64_t> payload(static_cast<size_t>(state.range(0)), 42);
  for (auto _ : state) {
    ByteWriter w;
    Codec<std::vector<uint64_t>>::Encode(w, payload);
    benchmark::DoNotOptimize(w.buffer().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0) * 8);
}
BENCHMARK(BM_CodecEncodeU64Vector)->Arg(64)->Arg(4096);

void BM_CodecRoundTripRecords(benchmark::State& state) {
  std::vector<std::pair<uint64_t, uint64_t>> recs(1024, {7, 9});
  for (auto _ : state) {
    ByteWriter w;
    Codec<decltype(recs)>::Encode(w, recs);
    ByteReader r(w.buffer());
    decltype(recs) out;
    Codec<decltype(recs)>::Decode(r, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_CodecRoundTripRecords);

void BM_TimestampSerde(benchmark::State& state) {
  Timestamp t(42, {1, 2, 3});
  for (auto _ : state) {
    ByteWriter w;
    t.Encode(w);
    ByteReader r(w.buffer());
    Timestamp out;
    out.Decode(r);
    benchmark::DoNotOptimize(out.epoch);
  }
}
BENCHMARK(BM_TimestampSerde);

// Frontier query cost as a function of active-pointstamp count (the O(active^2) design).
void BM_FrontierCanDeliver(benchmark::State& state) {
  LogicalGraph g;
  StageDef in_def;
  StageId in = g.AddStage(std::move(in_def));
  StageDef ing;
  ing.action = TimestampAction::kIngress;
  StageId ingress = g.AddStage(std::move(ing));
  StageDef body_def;
  body_def.depth = 1;
  StageId body = g.AddStage(std::move(body_def));
  StageDef fb;
  fb.depth = 1;
  fb.action = TimestampAction::kFeedback;
  StageId feedback = g.AddStage(std::move(fb));
  auto conn = [&](StageId a, StageId b) {
    ConnectorDef c;
    c.src = a;
    c.dst = b;
    g.AddConnector(std::move(c));
  };
  conn(in, ingress);
  conn(ingress, body);
  conn(body, feedback);
  conn(feedback, body);
  g.Freeze();

  EventCount ev;
  ProgressTracker tracker(&g, &ev);
  std::vector<ProgressUpdate> ups;
  const int64_t actives = state.range(0);
  for (int64_t i = 0; i < actives; ++i) {
    ups.push_back({{Timestamp(0, {static_cast<uint64_t>(i)}), Location::Stage(body)}, +1});
  }
  tracker.Apply(ups);
  const Pointstamp probe{Timestamp(0, {0}), Location::Stage(body)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.CanDeliver(probe));
  }
}
BENCHMARK(BM_FrontierCanDeliver)->Arg(4)->Arg(32)->Arg(256);

void BM_ProgressBufferFlushCombining(benchmark::State& state) {
  const int64_t updates = state.range(0);
  for (auto _ : state) {
    ProgressBuffer buf;
    for (int64_t i = 0; i < updates; ++i) {
      buf.Add({Timestamp(0), Location::Connector(static_cast<uint32_t>(i % 8))}, +1);
      buf.Add({Timestamp(0), Location::Connector(static_cast<uint32_t>(i % 8))}, -1);
    }
    benchmark::DoNotOptimize(buf.Take());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * updates * 2);
}
BENCHMARK(BM_ProgressBufferFlushCombining)->Arg(256);

void BM_MpscQueueHandoff(benchmark::State& state) {
  MpscQueue<uint64_t> q;
  std::vector<uint64_t> out;
  for (auto _ : state) {
    for (int i = 0; i < 128; ++i) {
      q.Push(static_cast<uint64_t>(i));
    }
    out.clear();
    q.DrainInto(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_MpscQueueHandoff);

void BM_EventCountSignal(benchmark::State& state) {
  EventCount ev;
  for (auto _ : state) {
    EventCount::Ticket t = ev.PrepareWait();
    ev.NotifyAll();
    ev.CommitWait(t, std::chrono::microseconds(0));
  }
}
BENCHMARK(BM_EventCountSignal);

// ------------------------------------------------------------------------------------
// Exchange-path microbenchmarks: the SendBy→OnRecv hot path Fig. 6a measures, in one
// process so no TCP noise — InputHandle::RouteRecords bucketing, Outlet routing buffers,
// DataItem dispatch, and per-bundle progress accumulation.
// ------------------------------------------------------------------------------------

// Re-sends every record through a partitioned route, one Send() per record.
class ResendVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    for (uint64_t x : batch) {
      output().Send(t, x + 1);
    }
  }
};

// Same, but forwards the whole batch at once (SendBatch bucketing path).
class ResendBatchVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    for (uint64_t& x : batch) {
      x += 1;
    }
    output().SendBatch(t, std::move(batch));
  }
};

// Accumulates metrics across every obs-enabled harness run, for the JSON report.
obs::SnapshotBuilder g_obs_builder;
bool g_obs_any = false;

// A one-worker pipeline input → resend (parallelism 4, hash exchange) → `sinks` ForEach
// stages (fan-out when > 1), all exchanged by value.
template <typename V>
class ExchangeHarness {
 public:
  // With `with_obs`, metrics and tracing are both on — the configuration the "*Obs"
  // benchmarks compare against their plain twins to bound observability overhead. The
  // trace lands at $NAIAD_TRACE_PATH (CI smoke-checks it) or is discarded.
  static Config MakeConfig(bool with_obs) {
    Config cfg{.workers_per_process = 1};
    if (with_obs) {
      cfg.obs.metrics = true;
      cfg.obs.tracing = true;
      if (const char* path = std::getenv("NAIAD_TRACE_PATH")) {
        cfg.obs.trace_path = path;
      }
    }
    return cfg;
  }

  explicit ExchangeHarness(uint32_t sinks, bool with_obs = false)
      : with_obs_(with_obs), ctl_(MakeConfig(with_obs)) {
    GraphBuilder b(ctl_);
    auto [in, handle] = NewInput<uint64_t>(b);
    handle_ = handle;
    Partitioner<uint64_t> part = [](const uint64_t& x) { return x; };
    StageId resend =
        b.NewStage<V>(StageOptions{.name = "resend", .parallelism = 4},
                      [](uint32_t) { return std::make_unique<V>(); });
    b.Connect<V, uint64_t>(in, resend, 0, part);
    for (uint32_t s = 0; s < sinks; ++s) {
      probe_ = ForEach<uint64_t>(
          b.OutputOf<uint64_t>(resend),
          [this](const Timestamp&, std::vector<uint64_t>& r) {
            sunk_.fetch_add(r.size(), std::memory_order_relaxed);
          },
          part);
    }
    ctl_.Start();
  }
  ~ExchangeHarness() {
    handle_->OnCompleted();
    ctl_.Join();
    if (with_obs_) {
      ctl_.obs().metrics().AccumulateInto(g_obs_builder, 0);
      g_obs_any = true;
    }
  }

  void RunEpoch(std::vector<uint64_t> batch) {
    handle_->OnNext(std::move(batch));
    probe_.WaitPassed(epoch_++);
  }
  uint64_t sunk() const { return sunk_.load(std::memory_order_relaxed); }

 private:
  bool with_obs_;
  Controller ctl_;
  std::shared_ptr<InputHandle<uint64_t>> handle_;
  Probe probe_;
  uint64_t epoch_ = 0;
  std::atomic<uint64_t> sunk_{0};
};

std::vector<uint64_t> EpochBatch(size_t n) {
  std::vector<uint64_t> batch(n);
  for (size_t i = 0; i < n; ++i) {
    batch[i] = i;
  }
  return batch;
}

void BM_ExchangeSendPerRecord(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ExchangeHarness<ResendVertex> h(/*sinks=*/1);
  for (auto _ : state) {
    h.RunEpoch(EpochBatch(n));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  benchmark::DoNotOptimize(h.sunk());
}
BENCHMARK(BM_ExchangeSendPerRecord)->Arg(8192)->UseRealTime();

void BM_ExchangeSendBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ExchangeHarness<ResendBatchVertex> h(/*sinks=*/1);
  for (auto _ : state) {
    h.RunEpoch(EpochBatch(n));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  benchmark::DoNotOptimize(h.sunk());
}
BENCHMARK(BM_ExchangeSendBatch)->Arg(8192)->UseRealTime();

// Columnar exchange: the resend stage repacks its input into ColumnBatch records via
// ColumnWriter (src/ser/columns.h) and ships whole (keys[], vals[]) columns through the
// route instead of individual records. Per-element cost should land near the bulk-memcpy
// floor BM_CodecEncodeU64Vector measures rather than BM_ExchangeSendPerRecord's per-Send
// dispatch cost.
class PackColumnsVertex final
    : public UnaryVertex<uint64_t, ColumnBatch<uint64_t, uint64_t>> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    const uint64_t dsts = 4;
    auto sink = [&](ColumnBatch<uint64_t, uint64_t>&& b) {
      output().Send(t, std::move(b));
    };
    ColumnWriter<uint64_t, uint64_t, decltype(sink)> cw(dsts, /*flush_at=*/4096, sink);
    for (uint64_t x : batch) {
      cw.Push(x % dsts, x, x + 1);
    }
    cw.Drain();
  }
};

// ExchangeHarness twin with a columnar middle leg: input → pack (parallelism 4, hash
// exchange on raw u64s) → sink stage routed by ColumnBatch::part.
class ColumnsHarness {
 public:
  using B = ColumnBatch<uint64_t, uint64_t>;

  ColumnsHarness() : ctl_(ExchangeHarness<ResendVertex>::MakeConfig(false)) {
    GraphBuilder b(ctl_);
    auto [in, handle] = NewInput<uint64_t>(b);
    handle_ = handle;
    StageId pack = b.NewStage<PackColumnsVertex>(
        StageOptions{.name = "pack", .parallelism = 4},
        [](uint32_t) { return std::make_unique<PackColumnsVertex>(); });
    b.Connect<PackColumnsVertex, uint64_t>(in, pack, 0,
                                           [](const uint64_t& x) { return x; });
    probe_ = ForEach<B>(
        b.OutputOf<B>(pack),
        [this](const Timestamp&, std::vector<B>& r) {
          for (const B& cb : r) {
            sunk_.fetch_add(cb.size(), std::memory_order_relaxed);
          }
        },
        [](const B& cb) { return cb.part; });
    ctl_.Start();
  }
  ~ColumnsHarness() {
    handle_->OnCompleted();
    ctl_.Join();
  }

  void RunEpoch(std::vector<uint64_t> batch) {
    handle_->OnNext(std::move(batch));
    probe_.WaitPassed(epoch_++);
  }
  uint64_t sunk() const { return sunk_.load(std::memory_order_relaxed); }

 private:
  Controller ctl_;
  std::shared_ptr<InputHandle<uint64_t>> handle_;
  Probe probe_;
  uint64_t epoch_ = 0;
  std::atomic<uint64_t> sunk_{0};
};

void BM_ExchangeSendColumns(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ColumnsHarness h;
  for (auto _ : state) {
    h.RunEpoch(EpochBatch(n));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  benchmark::DoNotOptimize(h.sunk());
}
BENCHMARK(BM_ExchangeSendColumns)->Arg(8192)->UseRealTime();

// The same exchange paths with metrics + tracing enabled; the delta against the plain
// variants is the observability overhead the acceptance budget bounds (< 5%).
void BM_ExchangeSendPerRecordObs(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ExchangeHarness<ResendVertex> h(/*sinks=*/1, /*with_obs=*/true);
  for (auto _ : state) {
    h.RunEpoch(EpochBatch(n));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  benchmark::DoNotOptimize(h.sunk());
}
BENCHMARK(BM_ExchangeSendPerRecordObs)->Arg(8192)->UseRealTime();

void BM_ExchangeSendBatchObs(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ExchangeHarness<ResendBatchVertex> h(/*sinks=*/1, /*with_obs=*/true);
  for (auto _ : state) {
    h.RunEpoch(EpochBatch(n));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  benchmark::DoNotOptimize(h.sunk());
}
BENCHMARK(BM_ExchangeSendBatchObs)->Arg(8192)->UseRealTime();

void BM_ExchangeFanout2(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ExchangeHarness<ResendVertex> h(/*sinks=*/2);
  for (auto _ : state) {
    h.RunEpoch(EpochBatch(n));
  }
  // Each record crosses the exchange once and is delivered to both sinks.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n) * 2);
  benchmark::DoNotOptimize(h.sunk());
}
BENCHMARK(BM_ExchangeFanout2)->Arg(8192)->UseRealTime();

// Captures finished runs so main() can write BENCH_micro_core.json next to the console
// table (the machine-readable perf trajectory; see EXPERIMENTS.md).
class CapturingReporter final : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    bool is_median = false;
    double real_time_ns = 0;
    double items_per_sec = 0;
  };

  // Under --benchmark_repetitions the per-iteration runs are noise; capture the median
  // aggregate for each benchmark then, and fall back to the raw run otherwise.
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.error_occurred) {
        continue;
      }
      const bool is_median =
          r.run_type == Run::RT_Aggregate && r.aggregate_name == "median";
      if (r.run_type != Run::RT_Iteration && !is_median) {
        continue;
      }
      Captured c;
      c.name = r.run_name.str();
      c.is_median = is_median;
      c.real_time_ns = r.GetAdjustedRealTime();
      auto it = r.counters.find("items_per_second");
      if (it != r.counters.end()) {
        c.items_per_sec = it->second.value;
      }
      captured.push_back(std::move(c));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  // One row per benchmark: the median aggregate when repetitions produced one, else the
  // single raw run.
  std::vector<Captured> Rows() const {
    bool any_median = false;
    for (const Captured& c : captured) {
      any_median = any_median || c.is_median;
    }
    std::vector<Captured> rows;
    for (const Captured& c : captured) {
      if (c.is_median == any_median) {
        rows.push_back(c);
      }
    }
    return rows;
  }

  std::vector<Captured> captured;
};

}  // namespace
}  // namespace naiad

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  naiad::CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  naiad::bench::JsonReport json("micro_core");
  json.Config("time_unit", "ns");
  for (const auto& c : reporter.Rows()) {
    json.NewRow();
    json.Str("name", c.name);
    json.Num("real_time_ns", c.real_time_ns);
    if (c.items_per_sec > 0) {
      json.Num("records_per_sec", c.items_per_sec);
    }
  }
  if (naiad::g_obs_any) {
    naiad::bench::AddObsRows(json, naiad::g_obs_builder.Finalize());
  }
  json.Write();
  benchmark::Shutdown();
  return 0;
}
