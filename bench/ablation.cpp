// Ablations for the runtime design choices DESIGN.md calls out (§3.2, §3.5):
//
//  1. Outlet batch size — the paper aggregates messages at the application level to keep
//     throughput high despite aggressive TCP timeouts; this sweep shows how throughput
//     collapses with tiny bundles and saturates with large ones.
//  2. Bounded re-entrancy — §3.2: without re-entrant delivery, tight self-message cycles
//     overload the system queues; with it, messages coalesce inside the callback stack.

#include <atomic>

#include "bench/bench_util.h"
#include "src/base/stopwatch.h"
#include "src/core/io.h"
#include "src/core/loop.h"
#include "src/core/stage.h"

namespace naiad {
namespace {

class RotateVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    for (uint64_t& x : batch) {
      ++x;
    }
    this->output().SendBatch(t, std::move(batch));
  }
};

double ExchangeSeconds(size_t batch_size, uint64_t records, uint64_t rounds) {
  Controller ctl(Config{.workers_per_process = 2, .batch_size = batch_size});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  LoopContext loop(b, 0, "xchg");
  FeedbackHandle<uint64_t> fb = loop.NewFeedback<uint64_t>(rounds);
  Partitioner<uint64_t> part = [](const uint64_t& x) { return x; };
  Stream<uint64_t> entered = loop.Ingress<uint64_t>(in, part);
  StageId rot = b.NewStage<RotateVertex>(StageOptions{.name = "rot", .depth = 1},
                                         [](uint32_t) {
                                           return std::make_unique<RotateVertex>();
                                         });
  b.Connect<RotateVertex, uint64_t>(entered, rot, 0, part);
  b.Connect<RotateVertex, uint64_t>(fb.stream(), rot, 0, part);
  fb.ConnectLoop(b.OutputOf<uint64_t>(rot), part);
  ctl.Start();
  std::vector<uint64_t> data(records);
  for (uint64_t i = 0; i < records; ++i) {
    data[i] = i;
  }
  Stopwatch sw;
  handle->OnNext(std::move(data));
  handle->OnCompleted();
  ctl.Join();
  return sw.ElapsedSeconds();
}

// Sends itself `chain` sequential messages through a self-cycle, forcing the queue-or-call
// decision on every hop.
class SelfChainVertex final : public Unary2Vertex<uint64_t, uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    for (uint64_t x : batch) {
      if (x > 0) {
        output1().Send(t, x - 1);
        output1().Flush();
      } else {
        output2().Send(t, 1);
      }
    }
  }
};

double SelfChainSeconds(uint32_t reentrancy, uint64_t chain, uint64_t parallel_chains) {
  Controller ctl(Config{.workers_per_process = 1, .batch_size = 1});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<uint64_t>(b);
  LoopContext loop(b, 0, "chain");
  FeedbackHandle<uint64_t> fb = loop.NewFeedback<uint64_t>();
  Stream<uint64_t> entered = loop.Ingress<uint64_t>(in);
  StageId body = b.NewStage<SelfChainVertex>(
      StageOptions{.name = "chain",
                   .depth = 1,
                   .parallelism = 1,
                   .reentrancy = reentrancy},
      [](uint32_t) { return std::make_unique<SelfChainVertex>(); });
  b.Connect<SelfChainVertex, uint64_t>(entered, body);
  b.Connect<SelfChainVertex, uint64_t>(fb.stream(), body);
  fb.ConnectLoop(b.OutputOf<uint64_t>(body, 0));
  std::atomic<uint64_t> done{0};
  ForEach<uint64_t>(loop.Egress<uint64_t>(b.OutputOf<uint64_t>(body, 1)),
                    [&](const Timestamp&, std::vector<uint64_t>& r) {
                      done.fetch_add(r.size());
                    });
  ctl.Start();
  std::vector<uint64_t> chains(parallel_chains, chain);
  Stopwatch sw;
  handle->OnNext(std::move(chains));
  handle->OnCompleted();
  ctl.Join();
  return sw.ElapsedSeconds();
}

}  // namespace
}  // namespace naiad

int main() {
  using namespace naiad;
  bench::Header("Ablation 1", "application-level message aggregation (§3.5)",
                "Naiad aggregates messages to keep throughput high; per-record bundles pay "
                "a work-item + progress update per record");
  bench::Row("%-12s %-14s %-14s", "batch size", "seconds", "records/s");
  for (size_t bs : {size_t{1}, size_t{16}, size_t{256}, size_t{4096}}) {
    const uint64_t records = bs == 1 ? 20000 : 200000;
    const double s = ExchangeSeconds(bs, records, 5);
    bench::Row("%-12zu %-14.3f %-14.3e", bs, s, records * 5 / s);
  }

  bench::Header("Ablation 2", "bounded re-entrancy (§3.2)",
                "re-entrant delivery lets a vertex's self-messages run inside the callback "
                "instead of round-tripping through the worker queue");
  bench::Row("%-14s %-14s", "reentrancy", "seconds");
  for (uint32_t depth : {0u, 4u, 16u, 64u}) {
    const double s = SelfChainSeconds(depth, 400, 50);
    bench::Row("%-14u %-14.3f", depth, s);
  }
  return 0;
}
