// Figure 7a (§6.1): PageRank on a power-law follower graph, four ways.
//
// The paper compares per-iteration times of three Naiad implementations against published
// PowerGraph results: the Pregel-library port is slowest (abstraction overhead: graph
// mutation support etc.), the source-partitioned "Vertex" variant is faster, and the
// space-filling-curve edge-partitioned "Edge" variant (the 547-line low-level version) is
// fastest. The PowerGraph comparator here is the shared-memory GAS engine of
// src/baseline/gas_engine.h. Expected shape: Edge <= Vertex < Pregel per iteration.

#include "bench/bench_util.h"
#include "src/algo/pagerank.h"
#include "src/baseline/gas_engine.h"
#include "src/base/stopwatch.h"
#include "src/core/io.h"
#include "src/gen/graphs.h"
#include "src/lib/operators.h"
#include "src/net/cluster.h"
#include "src/lib/pregel.h"

namespace naiad {
namespace {

constexpr uint32_t kWorkers = 4;
constexpr uint64_t kIters = 10;

std::atomic<uint64_t> g_sink{0};

template <typename BuildFn>
double TimePerIteration(const std::vector<Edge>& edges, BuildFn build) {
  Controller ctl(Config{.workers_per_process = kWorkers});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  Stream<NodeRank> out = build(in);
  ForEach<NodeRank>(out, [](const Timestamp&, std::vector<NodeRank>& recs) {
    g_sink.fetch_add(recs.size());
  });
  ctl.Start();
  Stopwatch sw;
  handle->OnNext(edges);
  handle->OnCompleted();
  ctl.Join();
  return sw.ElapsedSeconds() / static_cast<double>(kIters);
}

}  // namespace
}  // namespace naiad

int main() {
  using namespace naiad;
  bench::Header("Fig. 7a", "PageRank on a power-law follower graph (§6.1)",
                "per-iteration time: Naiad Edge < Naiad Vertex < Naiad Pregel; layering on "
                "higher abstractions costs, low-level vertices win");
  const std::vector<Edge> edges = PowerLawBothGraph(100000, 400000, 1.05, 31);
  bench::Row("synthetic follower graph: 100k nodes, 400k edges (Zipf 1.05 in+out); %u workers; "
             "%llu iterations",
             kWorkers, static_cast<unsigned long long>(kIters));
  bench::Row("%-16s %-18s", "variant", "s / iteration");

  {
    const double s = TimePerIteration(edges, [](Stream<Edge>& in) {
      return Select(Pregel<double, double>(
                        in, 1.0, kIters,
                        [](PregelNodeContext<double, double>& ctx,
                           const std::vector<double>& inbox) {
                          if (ctx.superstep() > 0) {
                            double sum = 0;
                            for (double m : inbox) {
                              sum += m;
                            }
                            ctx.state() = 0.15 + 0.85 * sum;
                          }
                          if (!ctx.out_edges().empty()) {
                            ctx.SendToAllNeighbors(
                                ctx.state() / static_cast<double>(ctx.out_edges().size()));
                          }
                        }),
                    [](const std::pair<uint64_t, double>& p) {
                      return NodeRank{p.first, p.second};
                    });
    });
    bench::Row("%-16s %-18.3f", "Naiad Pregel", s);
  }
  {
    const double s = TimePerIteration(
        edges, [](Stream<Edge>& in) { return PageRank(in, kIters); });
    bench::Row("%-16s %-18.3f", "Naiad Vertex", s);
  }
  {
    const double s = TimePerIteration(
        edges, [](Stream<Edge>& in) { return PageRankEdgePartitioned(in, kIters); });
    bench::Row("%-16s %-18.3f", "Naiad Edge", s);
  }
  {
    GasPageRank gas(edges, kWorkers);
    Stopwatch sw;
    gas.Run(kIters);
    bench::Row("%-16s %-18.3f   (shared-memory comparator)", "GAS baseline",
               sw.ElapsedSeconds() / static_cast<double>(kIters));
  }

  // The Edge variant's advantage is communication volume on skewed graphs (PowerGraph's
  // vertex-cut argument), not single-machine compute — measure wire bytes across a
  // 2-process cluster to show it in its own dimension.
  bench::Row("");
  bench::Row("exchange volume across 2 processes (same graph, %llu iterations):",
             static_cast<unsigned long long>(kIters));
  for (const bool edge_variant : {false, true}) {
    ClusterStats stats = Cluster::Run(
        ClusterOptions{.processes = 2, .workers_per_process = 2},
        [&](Controller& ctl) {
          GraphBuilder b(ctl);
          auto [in, handle] = NewInput<Edge>(b);
          Stream<NodeRank> out = edge_variant ? PageRankEdgePartitioned(in, kIters, /*grid_bits=*/2)
                                              : PageRank(in, kIters);
          ForEach<NodeRank>(out, [](const Timestamp&, std::vector<NodeRank>&) {});
          ctl.Start();
          handle->OnNext(Shard([&] { return edges; }, ctl.config().process_id, 2));
          handle->OnCompleted();
          ctl.Join();
        });
    bench::Row("  %-14s %8.1f MB on the wire", edge_variant ? "Naiad Edge" : "Naiad Vertex",
               stats.data_bytes / 1048576.0);
  }
  return 0;
}
