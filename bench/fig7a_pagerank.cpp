// Figure 7a (§6.1): PageRank on a power-law follower graph, five ways.
//
// The paper compares per-iteration times of three Naiad implementations against published
// PowerGraph results: the Pregel-library port is slowest (abstraction overhead: graph
// mutation support etc.), the source-partitioned "Vertex" variant is faster, and the
// space-filling-curve edge-partitioned "Edge" variant (the 547-line low-level version) is
// fastest. The PowerGraph comparator here is the shared-memory GAS engine of
// src/baseline/gas_engine.h. The "CSR" variant is the columnar graph substrate
// (src/algo/csr.h + src/ser/columns.h): same dataflow as Vertex, flat state and columnar
// exchange. Expected shape: CSR < Edge <= Vertex < Pregel per iteration.
//
// Scale knobs (EXPERIMENTS.md "Scale sweeps"):
//   --edges=N          edge count (default 400000; 10^7–10^8 for the scale points)
//   --nodes=N          node count (default edges/4)
//   --iters=N          PageRank iterations (default 10)
//   --workers=N        worker threads (default 4)
//   --variants=a,b,c   subset of pregel,vertex,edge,csr,gas (default all)
//   --reps=N           best-of-N timing per variant (default 1; use 3+ on noisy hosts —
//                      the min is the least-interference estimate)
//   --wire=0|1         2-process wire-volume section (default on at <= 10^6 edges)
//   --cluster-edges=N  streaming multi-process CSR run at this scale (0 = skip): edges
//                      are generated shard-by-shard (PowerLawEdgeStream) and fed through
//                      InputHandle::OnPartial, so no process materializes the graph
//   --cluster-procs=N  processes for the streaming run (default 2)

#include <algorithm>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/algo/pagerank.h"
#include "src/baseline/gas_engine.h"
#include "src/base/stopwatch.h"
#include "src/core/io.h"
#include "src/gen/graphs.h"
#include "src/lib/operators.h"
#include "src/net/cluster.h"
#include "src/lib/pregel.h"

namespace naiad {
namespace {

constexpr double kExponent = 1.05;
constexpr uint64_t kSeed = 31;

std::atomic<uint64_t> g_sink{0};

uint64_t FlagU64(int argc, char** argv, const char* name, uint64_t dflt) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return dflt;
}

std::string FlagStr(int argc, char** argv, const char* name, const std::string& dflt) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return dflt;
}

bool HasVariant(const std::string& list, const char* v) {
  return ("," + list + ",").find("," + std::string(v) + ",") != std::string::npos;
}

template <typename RunFn>
double BestOf(uint64_t reps, RunFn run) {
  double best = run();
  for (uint64_t r = 1; r < reps; ++r) {
    best = std::min(best, run());
  }
  return best;
}

template <typename BuildFn>
double TotalSeconds(const std::vector<Edge>& edges, uint32_t workers, BuildFn build) {
  Controller ctl(Config{.workers_per_process = workers});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  Stream<NodeRank> out = build(in);
  ForEach<NodeRank>(out, [](const Timestamp&, std::vector<NodeRank>& recs) {
    g_sink.fetch_add(recs.size());
  });
  ctl.Start();
  Stopwatch sw;
  handle->OnNext(edges);
  handle->OnCompleted();
  ctl.Join();
  return sw.ElapsedSeconds();
}

void Report(bench::JsonReport& report, const char* variant, uint64_t edges, uint64_t iters,
            double total_s) {
  // Throughput = edges traversed per second of wall time (the Fig. 7 y-axis quantity).
  const double rps = static_cast<double>(edges) * static_cast<double>(iters) / total_s;
  bench::Row("%-16s %-18.3f %-18.3g", variant, total_s / static_cast<double>(iters), rps);
  report.NewRow();
  report.Str("kind", "variant");
  report.Str("variant", variant);
  report.Num("sec_per_iter", total_s / static_cast<double>(iters));
  report.Num("records_per_sec", rps);
}

}  // namespace
}  // namespace naiad

int main(int argc, char** argv) {
  using namespace naiad;
  const uint64_t edges_n = FlagU64(argc, argv, "edges", 400000);
  const uint64_t nodes_n = FlagU64(argc, argv, "nodes", edges_n / 4);
  const uint64_t iters = FlagU64(argc, argv, "iters", 10);
  const uint32_t workers = static_cast<uint32_t>(FlagU64(argc, argv, "workers", 4));
  const std::string variants =
      FlagStr(argc, argv, "variants", "pregel,vertex,edge,csr,gas");
  const uint64_t reps = std::max<uint64_t>(1, FlagU64(argc, argv, "reps", 1));
  const bool wire = FlagU64(argc, argv, "wire", edges_n <= 1000000 ? 1 : 0) != 0;
  const uint64_t cluster_edges = FlagU64(argc, argv, "cluster-edges", 0);
  const uint32_t cluster_procs =
      static_cast<uint32_t>(FlagU64(argc, argv, "cluster-procs", 2));

  bench::Header("Fig. 7a", "PageRank on a power-law follower graph (§6.1)",
                "per-iteration time: Naiad Edge < Naiad Vertex < Naiad Pregel; layering on "
                "higher abstractions costs, low-level vertices win");
  bench::JsonReport report("fig7a");
  report.Config("nodes", static_cast<double>(nodes_n));
  report.Config("edges", static_cast<double>(edges_n));
  report.Config("iters", static_cast<double>(iters));
  report.Config("workers", static_cast<double>(workers));

  const std::vector<Edge> edges = PowerLawBothGraph(nodes_n, edges_n, kExponent, kSeed);
  bench::Row("synthetic follower graph: %llu nodes, %llu edges (Zipf %.2f in+out); "
             "%u workers; %llu iterations",
             static_cast<unsigned long long>(nodes_n),
             static_cast<unsigned long long>(edges_n), kExponent, workers,
             static_cast<unsigned long long>(iters));
  bench::Row("%-16s %-18s %-18s", "variant", "s / iteration", "records/s");

  if (HasVariant(variants, "pregel")) {
    const double s = BestOf(reps, [&] {
      return TotalSeconds(edges, workers, [iters](Stream<Edge>& in) {
      return Select(Pregel<double, double>(
                        in, 1.0, iters,
                        [](PregelNodeContext<double, double>& ctx,
                           const std::vector<double>& inbox) {
                          if (ctx.superstep() > 0) {
                            double sum = 0;
                            for (double m : inbox) {
                              sum += m;
                            }
                            ctx.state() = 0.15 + 0.85 * sum;
                          }
                          if (!ctx.out_edges().empty()) {
                            ctx.SendToAllNeighbors(
                                ctx.state() / static_cast<double>(ctx.out_edges().size()));
                          }
                        }),
                      [](const std::pair<uint64_t, double>& p) {
                        return NodeRank{p.first, p.second};
                      });
      });
    });
    Report(report, "Naiad Pregel", edges_n, iters, s);
  }
  if (HasVariant(variants, "vertex")) {
    const double s = BestOf(reps, [&] {
      return TotalSeconds(
          edges, workers, [iters](Stream<Edge>& in) { return PageRank(in, iters); });
    });
    Report(report, "Naiad Vertex", edges_n, iters, s);
  }
  if (HasVariant(variants, "edge")) {
    const double s = BestOf(reps, [&] {
      return TotalSeconds(edges, workers, [iters](Stream<Edge>& in) {
        return PageRankEdgePartitioned(in, iters);
      });
    });
    Report(report, "Naiad Edge", edges_n, iters, s);
  }
  if (HasVariant(variants, "csr")) {
    const double s = BestOf(reps, [&] {
      return TotalSeconds(
          edges, workers, [iters](Stream<Edge>& in) { return PageRankCsr(in, iters); });
    });
    Report(report, "Naiad CSR", edges_n, iters, s);
  }
  if (HasVariant(variants, "gas")) {
    const double s = BestOf(reps, [&] {
      GasPageRank gas(edges, workers);
      Stopwatch sw;
      gas.Run(iters);
      return sw.ElapsedSeconds();
    });
    bench::Row("%-16s %-18.3f %-18.3g   (shared-memory comparator)", "GAS baseline",
               s / static_cast<double>(iters),
               static_cast<double>(edges_n) * static_cast<double>(iters) / s);
    report.NewRow();
    report.Str("kind", "variant");
    report.Str("variant", "GAS baseline");
    report.Num("sec_per_iter", s / static_cast<double>(iters));
    report.Num("records_per_sec",
               static_cast<double>(edges_n) * static_cast<double>(iters) / s);
  }

  if (wire) {
    // The Edge variant's advantage is communication volume on skewed graphs (PowerGraph's
    // vertex-cut argument), not single-machine compute — measure wire bytes across a
    // 2-process cluster to show it in its own dimension.
    bench::Row("");
    bench::Row("exchange volume across 2 processes (same graph, %llu iterations):",
               static_cast<unsigned long long>(iters));
    struct WireCase {
      const char* name;
      int which;  // 0 = vertex, 1 = edge, 2 = csr
    };
    for (const WireCase& wc :
         {WireCase{"Naiad Vertex", 0}, WireCase{"Naiad Edge", 1}, WireCase{"Naiad CSR", 2}}) {
      ClusterStats stats = Cluster::Run(
          ClusterOptions{.processes = 2, .workers_per_process = 2},
          [&](Controller& ctl) {
            GraphBuilder b(ctl);
            auto [in, handle] = NewInput<Edge>(b);
            Stream<NodeRank> out =
                wc.which == 1 ? PageRankEdgePartitioned(in, iters, /*grid_bits=*/2)
                : wc.which == 2 ? PageRankCsr(in, iters)
                                : PageRank(in, iters);
            ForEach<NodeRank>(out, [](const Timestamp&, std::vector<NodeRank>&) {});
            ctl.Start();
            handle->OnNext(Shard([&] { return edges; }, ctl.config().process_id, 2));
            handle->OnCompleted();
            ctl.Join();
          });
      bench::Row("  %-14s %8.1f MB on the wire", wc.name, stats.data_bytes / 1048576.0);
      report.NewRow();
      report.Str("kind", "wire");
      report.Str("variant", wc.name);
      report.Num("wire_mb", stats.data_bytes / 1048576.0);
    }
  }

  if (cluster_edges > 0) {
    // The 10^8-edge scale point: every process generates only its shard of the graph
    // (counter-based PowerLawEdgeStream) and streams it into the epoch in bounded chunks.
    const uint64_t cluster_nodes = cluster_edges / 4;
    bench::Row("");
    bench::Row("streaming CSR run: %llu edges, %u processes x 2 workers:",
               static_cast<unsigned long long>(cluster_edges), cluster_procs);
    constexpr size_t kChunk = 1 << 20;
    Stopwatch sw;
    Cluster::Run(
        ClusterOptions{.processes = cluster_procs, .workers_per_process = 2},
        [&](Controller& ctl) {
          GraphBuilder b(ctl);
          auto [in, handle] = NewInput<Edge>(b);
          Stream<NodeRank> out = PageRankCsr(in, iters);
          ForEach<NodeRank>(out, [](const Timestamp&, std::vector<NodeRank>& recs) {
            g_sink.fetch_add(recs.size());
          });
          ctl.Start();
          PowerLawEdgeStream stream(PowerLawEdgeStream::Options{
              .nodes = cluster_nodes,
              .edges = cluster_edges,
              .exponent = kExponent,
              .seed = kSeed,
              .part = ctl.config().process_id,
              .parts = cluster_procs});
          std::vector<Edge> chunk;
          chunk.reserve(kChunk);
          while (stream.NextChunk(chunk, kChunk) > 0) {
            handle->OnPartial(std::move(chunk));
            chunk = {};
            chunk.reserve(kChunk);
          }
          handle->OnNext();  // seal epoch 0
          handle->OnCompleted();
          ctl.Join();
        });
    const double s = sw.ElapsedSeconds();
    const double rps =
        static_cast<double>(cluster_edges) * static_cast<double>(iters) / s;
    bench::Row("  %.1f s total, %.3g records/s", s, rps);
    report.NewRow();
    report.Str("kind", "cluster");
    report.Str("variant", "Naiad CSR");
    report.Num("procs", cluster_procs);
    report.Num("cluster_edges", static_cast<double>(cluster_edges));
    report.Num("seconds", s);
    report.Num("records_per_sec", rps);
  }

  report.Write();
  return 0;
}
