// Figure 6b (§5.2): global coordination (barrier) latency.
//
// An empty cyclic dataflow in which every vertex only requests and receives completeness
// notifications; no iteration proceeds until all notifications of the previous iteration
// are delivered. The paper reports the distribution of per-iteration times (median 753 µs
// at 64 computers, tails from micro-stragglers). Expected shape here: microsecond-scale
// medians in one process, growing latency and tail with process count as the progress
// protocol crosses TCP.

#include <mutex>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/stopwatch.h"
#include "src/core/io.h"
#include "src/core/loop.h"
#include "src/core/stage.h"
#include "src/net/cluster.h"

namespace naiad {
namespace {

std::mutex g_mu;
std::vector<double> g_iteration_micros;

class BarrierVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  BarrierVertex(uint64_t iters, bool timekeeper) : iters_(iters), timekeeper_(timekeeper) {}

  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {}

  void OnNotify(const Timestamp& t) override {
    if (timekeeper_) {
      if (t.coords.back() > 0) {
        std::lock_guard<std::mutex> lock(g_mu);
        g_iteration_micros.push_back(sw_.ElapsedMicros());
      }
      sw_.Restart();
    }
    if (t.coords.back() + 1 < iters_) {
      NotifyAt(t.Incremented());
    }
  }

 private:
  uint64_t iters_;
  bool timekeeper_;
  Stopwatch sw_;
};

SampleStats RunBarrier(uint32_t processes, uint32_t workers, uint64_t iters) {
  {
    std::lock_guard<std::mutex> lock(g_mu);
    g_iteration_micros.clear();
  }
  Cluster::Run(ClusterOptions{.processes = processes, .workers_per_process = workers},
               [&](Controller& ctl) {
                 GraphBuilder b(ctl);
                 auto [in, handle] = NewInput<uint64_t>(b);
                 LoopContext loop(b, 0, "barrier");
                 FeedbackHandle<uint64_t> fb = loop.NewFeedback<uint64_t>();
                 Stream<uint64_t> entered = loop.Ingress<uint64_t>(in);
                 const bool host0 = ctl.config().process_id == 0;
                 StageId barrier = b.NewStage<BarrierVertex>(
                     StageOptions{.name = "barrier",
                                  .depth = 1,
                                  .initial_notifications = {Timestamp(0, {0})}},
                     [&, host0](uint32_t index) {
                       return std::make_unique<BarrierVertex>(iters,
                                                              host0 && index == 0);
                     });
                 b.Connect<BarrierVertex, uint64_t>(entered, barrier);
                 b.Connect<BarrierVertex, uint64_t>(fb.stream(), barrier);
                 fb.ConnectLoop(b.OutputOf<uint64_t>(barrier));
                 ctl.Start();
                 handle->OnCompleted();
                 ctl.Join();
               });
  SampleStats stats;
  std::lock_guard<std::mutex> lock(g_mu);
  for (double v : g_iteration_micros) {
    stats.Add(v);
  }
  return stats;
}

}  // namespace
}  // namespace naiad

int main() {
  using namespace naiad;
  bench::Header("Fig. 6b", "global barrier latency (§5.2)",
                "median per-iteration time stays sub-millisecond (753 us at 64 computers); "
                "the 95th percentile grows with cluster size (micro-stragglers)");
  bench::Row("%-10s %-9s %-12s %-12s %-12s %-12s %-12s %-12s", "processes", "workers",
             "iterations", "p25 (us)", "median", "p75", "p95", "p99");
  bench::JsonReport json("fig6b");
  json.Config("workers_per_process", 2);
  for (uint32_t procs : {1u, 2u, 4u}) {
    const uint64_t iters = procs == 1 ? 2000 : 600;
    SampleStats s = RunBarrier(procs, 2, iters);
    bench::Row("%-10u %-9u %-12llu %-12.1f %-12.1f %-12.1f %-12.1f %-12.1f", procs,
               procs * 2, static_cast<unsigned long long>(s.Count()), s.Percentile(25),
               s.Median(), s.Percentile(75), s.Percentile(95), s.Percentile(99));
    json.NewRow();
    json.Num("processes", procs);
    json.Num("workers", procs * 2);
    json.Num("iterations", static_cast<double>(s.Count()));
    json.Num("p50_us", s.Median());
    json.Num("p95_us", s.Percentile(95));
    json.Num("p99_us", s.Percentile(99));
  }
  json.Write();
  return 0;
}
