// Recovery bench: coordinated restart vs selective (Falkirk Wheel) rollback.
//
// A 3-process forked cluster runs the partitioned word count from the kill-and-recover
// sweep, but heavier: 16 epochs with checkpoint commits after epochs 7 and 15, ~128x the
// sweep's records per epoch, and a 128-round per-record operator, so re-execution after
// a restart costs real CPU time. One
// member is SIGKILLed mid-feed at epoch 14 — seven epochs of un-checkpointed work in
// flight — and the run is repeated under both recovery modes with the same seed.
//
// The modes differ in WHO re-executes the lost epochs. Coordinated restart rolls every
// member back to the epoch-7 manifest, so all processes burn CPU redoing epochs 8-14;
// selective recovery re-executes them on the replacement alone while survivors keep their
// state and answer nothing but dedup drops. Re-execution is compute-bound, so the
// coordinated stall grows with cluster-aggregate re-work while the selective stall grows
// only with one process's share. The kill lands late in the run on purpose: survivors
// have little left to feed, so the stall isolates re-execution cost instead of mixing it
// with their remaining forward work (which on this container shares one core).
//
// The numbers the table compares (both from ClusterStats):
//   survivor_stall_s  longest any survivor spent unable to make forward progress: from
//                     detecting the death until it re-passes the epoch it had already
//                     fed before the kill. Coordinated restarts discard survivor state,
//                     so this includes re-executing epochs 8-14 from the manifest;
//                     selective recovery holds survivors paused only through the stall
//                     barrier + seed exchange and replays the log tail to the
//                     replacement alone.
//   downtime_s        detection -> rebuilt-and-running, for the slowest member.
//
// The headline claim of the Falkirk Wheel section in DESIGN.md is that survivor stall is
// materially below the coordinated baseline while the final images stay byte-identical
// (that equivalence is enforced by tests/cluster_recovery_test.cc, not re-proved here).

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/hash.h"
#include "src/base/rng.h"
#include "src/core/io.h"
#include "src/ft/cluster_recovery.h"

namespace naiad {
namespace {

constexpr uint64_t kCorpusSeed = 0xC0FFEEULL;
constexpr uint64_t kWordsPerEpoch = 262144;
constexpr uint64_t kVocabulary = 9973;
// Per-record operator cost, emulating a vertex that does real work per input (parsing,
// feature extraction, ...). This is what makes the comparison meaningful: re-execution
// is dominated by vertex compute, which coordinated restart repeats on every member and
// selective recovery repeats only on the replacement (replayed frames still pay it there
// — the replacement's processing is not skipped, the survivors' is).
constexpr int kWorkRoundsPerRecord = 128;

class CountVertex final : public SinkVertex<uint64_t> {
 public:
  void OnRecv(const Timestamp&, std::vector<uint64_t>& batch) override {
    for (uint64_t w : batch) {
      uint64_t x = w;
      for (int r = 0; r < kWorkRoundsPerRecord; ++r) {
        x = HashCombine(x, static_cast<uint64_t>(r));
      }
      scratch_ ^= x;
      ++counts_[w];
    }
  }
  void Checkpoint(ByteWriter& w) const override {
    w.WriteU32(static_cast<uint32_t>(counts_.size()));
    for (const auto& [word, count] : counts_) {
      w.WriteU64(word);
      w.WriteU64(count);
    }
  }
  bool Restore(ByteReader& r) override {
    counts_.clear();
    const uint32_t n = r.ReadU32();
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t word = r.ReadU64();
      counts_[word] = r.ReadU64();
    }
    return r.ok();
  }

 private:
  std::map<uint64_t, uint64_t> counts_;
  uint64_t scratch_ = 0;  // keeps the per-record work observable; not checkpointed
};

class WordCountApp final : public ClusterApp {
 public:
  explicit WordCountApp(Controller& ctl) : ctl_(&ctl) {
    GraphBuilder b(ctl);
    auto [in, h] = NewInput<uint64_t>(b);
    handle_ = h;
    input_stage_ = in.stage;
    StageId sid = b.NewStage<CountVertex>(
        StageOptions{.name = "count"},
        [](uint32_t) { return std::make_unique<CountVertex>(); });
    b.Connect<CountVertex, uint64_t>(in, sid, 0, [](const uint64_t& w) { return w; });
    probe_ = Probe(&ctl, sid);
  }

  void FeedEpoch(uint64_t epoch) override {
    NAIAD_CHECK(handle_->next_epoch() == epoch);
    Rng rng(HashCombine(HashCombine(kCorpusSeed, epoch), ctl_->config().process_id));
    std::vector<uint64_t> words(kWordsPerEpoch);
    for (uint64_t& w : words) {
      w = rng.Below(kVocabulary);
    }
    handle_->OnNext(std::move(words));
  }
  bool EpochPassed(uint64_t epoch) override { return probe_.Passed(epoch); }
  void RestoreInputs(const std::vector<InputEpochs>& inputs) override {
    for (const InputEpochs& in : inputs) {
      if (in.stage == input_stage_) {
        handle_->RestoreEpoch(in.next_epoch, in.closed);
      }
    }
  }
  void CloseInputs() override { handle_->OnCompleted(); }

 private:
  Controller* ctl_;
  std::shared_ptr<InputHandle<uint64_t>> handle_;
  StageId input_stage_ = 0;
  Probe probe_;
};

ClusterRunConfig BenchConfig(const std::string& dir, RecoveryMode mode) {
  ClusterRunConfig cfg;
  cfg.processes = 3;
  cfg.workers_per_process = 2;
  cfg.total_epochs = 16;
  cfg.checkpoint_every = 8;  // commits after epochs 7 and 15
  cfg.ckpt_dir = dir;
  cfg.obs.metrics = true;
  cfg.recovery_mode = mode;
  return cfg;
}

std::string FreshDir(const std::string& tag) {
  const std::string dir = "/tmp/naiad_bench_recovery_" + std::to_string(::getpid()) +
                          "_" + tag;
  const std::string cmd = "rm -rf '" + dir + "'";
  NAIAD_CHECK(::system(cmd.c_str()) == 0);
  NAIAD_CHECK(::mkdir(dir.c_str(), 0755) == 0);
  return dir;
}

// Mirrors the driver's kill-schedule derivation so the bench can pick a seed whose kill
// lands mid-feed at epoch 14: after the epoch-7 commit, with epochs 8-14 un-checkpointed.
bool SeedFits(uint64_t seed, uint64_t total_epochs) {
  Rng kr(HashCombine(seed, HashString("CLUSTER-KILL")));
  const bool in_barrier = (kr.Next() & 1) != 0;
  const uint64_t kill_epoch = 1 + seed % (total_epochs - 1);
  return !in_barrier && kill_epoch == 14;
}

struct Trial {
  bool ok = false;
  ClusterStats stats;
};

Trial RunOne(RecoveryMode mode, uint64_t seed, const std::string& tag) {
  const std::string dir = FreshDir(tag);
  ClusterKillRecoverDriver::Options opts;
  opts.cfg = BenchConfig(dir, mode);
  opts.seed = seed;
  opts.inject_kill = true;
  const ClusterKillOutcome out =
      ClusterKillRecoverDriver::Run(opts, [](Controller& ctl) {
        return std::make_unique<WordCountApp>(ctl);
      });
  Trial t;
  t.ok = out.launched && out.ok && out.killed && out.stats.recoveries >= 1;
  t.stats = out.stats;
  const std::string cmd = "rm -rf '" + dir + "'";
  NAIAD_CHECK(::system(cmd.c_str()) == 0);
  return t;
}

}  // namespace
}  // namespace naiad

int main() {
  using namespace naiad;
  bench::Header("recovery", "selective vs coordinated restart",
                "survivors of a single failure keep their state; only the replacement "
                "rolls back (ROADMAP item 3; paper §3.4 discusses the coordinated "
                "baseline this improves on)");

  uint64_t seed = 0;
  while (!SeedFits(seed, 16)) {
    ++seed;
  }

  bench::JsonReport report("recovery");
  report.Config("processes", 3.0);
  report.Config("total_epochs", 16.0);
  report.Config("checkpoint_every", 8.0);
  report.Config("words_per_epoch", static_cast<double>(kWordsPerEpoch));
  report.Config("kill_epoch", 14.0);
  report.Config("seed", static_cast<double>(seed));

  bench::Row("%-12s %7s %16s %12s %10s %14s", "mode", "trial", "survivor_stall_s",
             "downtime_s", "selective", "replay_dropped");
  constexpr int kTrials = 3;
  for (const RecoveryMode mode : {RecoveryMode::kCoordinated, RecoveryMode::kSelective}) {
    const char* name = mode == RecoveryMode::kSelective ? "selective" : "coordinated";
    for (int trial = 0; trial < kTrials; ++trial) {
      const Trial t = RunOne(mode, seed, std::string(name) + std::to_string(trial));
      if (!t.ok) {
        bench::Row("%-12s %7d  (run failed to recover; retrying not attempted)", name,
                   trial);
        continue;
      }
      // A selective run that fell back reports selective_recoveries == 0; keep the row —
      // the fallback rate is part of the story — but label it.
      bench::Row("%-12s %7d %16.4f %12.4f %10llu %14llu", name, trial,
                 t.stats.survivor_stall_seconds, t.stats.recovery_downtime_seconds,
                 static_cast<unsigned long long>(t.stats.selective_recoveries),
                 static_cast<unsigned long long>(t.stats.replayed_frames_dropped));
      report.NewRow();
      report.Str("mode", name);
      report.Num("trial", trial);
      report.Num("survivor_stall_s", t.stats.survivor_stall_seconds);
      report.Num("downtime_s", t.stats.recovery_downtime_seconds);
      report.Num("selective_recoveries",
                 static_cast<double>(t.stats.selective_recoveries));
      report.Num("replayed_frames_dropped",
                 static_cast<double>(t.stats.replayed_frames_dropped));
      report.Num("checkpoint_epochs", static_cast<double>(t.stats.checkpoint_epochs));
      report.Num("elapsed_s", t.stats.elapsed_seconds);
    }
  }
  report.Write();
  return 0;
}
