// Figure 6e (§5.4): weak scaling — input grows with the worker count.
//
// Perfect weak scaling would keep running time flat as workers and input grow together.
// Paper's shape: WCC degrades to ~1.44x the single-computer time at 64 computers (the
// per-worker exchange volume is constant but an increasing fraction crosses the network);
// WordCount degrades less (~1.23x) thanks to combiners shrinking its exchange.

#include <atomic>

#include "bench/bench_util.h"
#include "src/algo/wcc.h"
#include "src/algo/wordcount.h"
#include "src/base/stopwatch.h"
#include "src/core/io.h"
#include "src/gen/graphs.h"
#include "src/gen/text.h"

namespace naiad {
namespace {

double RunWordCount(uint32_t workers) {
  Controller ctl(Config{.workers_per_process = workers});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<std::string>(b);
  std::atomic<uint64_t> sink{0};
  ForEach<WordCountRecord>(WordCount(in),
                           [&](const Timestamp&, std::vector<WordCountRecord>& recs) {
                             sink.fetch_add(recs.size());
                           });
  ctl.Start();
  Stopwatch sw;
  // 6k lines *per worker*, like the paper's 2 GB per computer.
  handle->OnNext(ZipfCorpus(6000 * workers, 12, 20000, 77));
  handle->OnCompleted();
  ctl.Join();
  return sw.ElapsedSeconds();
}

double RunWcc(uint32_t workers) {
  Controller ctl(Config{.workers_per_process = workers});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  std::atomic<uint64_t> sink{0};
  ForEach<NodeLabel>(ConnectedComponents(in),
                     [&](const Timestamp&, std::vector<NodeLabel>& recs) {
                       sink.fetch_add(recs.size());
                     });
  ctl.Start();
  Stopwatch sw;
  // Constant edges (40k) and nodes (15k) per worker, as in §5.4.
  handle->OnNext(RandomGraph(15000 * workers, 40000 * workers, 78));
  handle->OnCompleted();
  ctl.Join();
  return sw.ElapsedSeconds();
}

}  // namespace
}  // namespace naiad

int main() {
  using namespace naiad;
  bench::Header("Fig. 6e", "weak scaling: WCC and WordCount (§5.4)",
                "per-worker-constant input: WCC slows to ~1.44x single-computer time at "
                "64 computers; WordCount only ~1.23x (combiners shrink its exchange)");
  bench::Row("%-9s %-16s %-18s %-16s %-18s", "workers", "wordcount (s)", "wc slowdown",
             "wcc (s)", "wcc slowdown");
  double wc1 = 0;
  double cc1 = 0;
  for (uint32_t w : {1u, 2u, 4u}) {
    const double wc = RunWordCount(w);
    const double cc = RunWcc(w);
    if (w == 1) {
      wc1 = wc;
      cc1 = cc;
    }
    bench::Row("%-9u %-16.3f %-18.2f %-16.3f %-18.2f", w, wc, wc / wc1, cc, cc / cc1);
  }
  return 0;
}
