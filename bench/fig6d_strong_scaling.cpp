// Figure 6d (§5.4): strong scaling — fixed input, growing worker count.
//
// WordCount (embarrassingly parallel MapReduce) vs WCC (synchronization-heavy, becomes
// latency-bound near convergence). Paper's shape: WordCount scales near-linearly (46x at
// 64 computers); WCC flattens earlier (38x). On this single-machine reproduction the
// harness sweeps workers within one process; with more workers than cores the curves show
// overhead trends rather than speedup — EXPERIMENTS.md records the caveat.

#include <mutex>

#include "bench/bench_util.h"
#include "src/algo/wcc.h"
#include "src/algo/wordcount.h"
#include "src/base/stopwatch.h"
#include "src/core/io.h"
#include "src/gen/graphs.h"
#include "src/gen/text.h"

namespace naiad {
namespace {

double RunWordCount(uint32_t workers, const std::vector<std::string>& corpus) {
  Controller ctl(Config{.workers_per_process = workers});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<std::string>(b);
  std::atomic<uint64_t> distinct{0};
  ForEach<WordCountRecord>(WordCount(in),
                           [&](const Timestamp&, std::vector<WordCountRecord>& recs) {
                             distinct.fetch_add(recs.size());
                           });
  ctl.Start();
  Stopwatch sw;
  handle->OnNext(corpus);
  handle->OnCompleted();
  ctl.Join();
  return sw.ElapsedSeconds();
}

double RunWcc(uint32_t workers, const std::vector<Edge>& edges) {
  Controller ctl(Config{.workers_per_process = workers});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  std::atomic<uint64_t> labels{0};
  ForEach<NodeLabel>(ConnectedComponents(in),
                     [&](const Timestamp&, std::vector<NodeLabel>& recs) {
                       labels.fetch_add(recs.size());
                     });
  ctl.Start();
  Stopwatch sw;
  handle->OnNext(edges);
  handle->OnCompleted();
  ctl.Join();
  return sw.ElapsedSeconds();
}

}  // namespace
}  // namespace naiad

int main() {
  using namespace naiad;
  bench::Header("Fig. 6d", "strong scaling: WordCount and WCC (§5.4)",
                "fixed input, growing workers: WordCount near-linear (46x @ 64), WCC "
                "flattens earlier (38x @ 64, latency-bound near convergence)");
  const std::vector<std::string> corpus = ZipfCorpus(20000, 12, 20000, 9);
  const std::vector<Edge> edges = RandomGraph(50000, 150000, 10);
  bench::Row("WordCount input: 20k lines x 12 words; WCC input: 150k edges / 50k nodes");
  bench::Row("%-9s %-16s %-16s %-16s %-16s", "workers", "wordcount (s)", "wc speedup",
             "wcc (s)", "wcc speedup");
  double wc1 = 0;
  double cc1 = 0;
  for (uint32_t w : {1u, 2u, 4u, 8u}) {
    const double wc = RunWordCount(w, corpus);
    const double cc = RunWcc(w, edges);
    if (w == 1) {
      wc1 = wc;
      cc1 = cc;
    }
    bench::Row("%-9u %-16.3f %-16.2f %-16.3f %-16.2f", w, wc, wc1 / wc, cc, cc1 / cc);
  }
  return 0;
}
