// Figure 8 (§6.4): response-time series for interactive queries against a streaming
// iterative graph analysis.
//
// Tweets stream in while queries arrive concurrently. In "Fresh" mode a correct answer
// cannot be produced until the in-flight component/hashtag update work completes, so query
// latencies ride up with every update burst (the paper's "shark fin"). In "1 s delay"
// (stale) mode queries read already-computed state and return in milliseconds, with
// occasional peaks when update work interferes. Expected shape: stale latencies are one to
// two orders of magnitude below fresh latencies under the same load.

#include <map>
#include <mutex>

#include "bench/bench_util.h"
#include "src/algo/analytics.h"
#include "src/base/stopwatch.h"
#include "src/core/io.h"
#include "src/gen/tweets.h"

namespace naiad {
namespace {

std::map<uint64_t, double> RunSeries(QueryFreshness mode, uint64_t rounds,
                                     size_t tweets_per_round) {
  std::mutex mu;
  std::map<uint64_t, double> submit_ms;   // query id -> submit time
  std::map<uint64_t, double> latency_ms;  // query id -> response latency
  Stopwatch wall;

  Controller ctl(Config{.workers_per_process = 4});
  GraphBuilder b(ctl);
  auto [tweets, tweet_handle] = NewInput<Tweet>(b, "tweets");
  auto [queries, query_handle] = NewInput<TopTagQuery>(b, "queries");
  Stream<TopTagAnswer> answers = StreamingTopHashtags(tweets, queries, mode);
  Probe probe = ForEach<TopTagAnswer>(answers, [&](const Timestamp&, std::vector<TopTagAnswer>& recs) {
    std::lock_guard<std::mutex> lock(mu);
    for (const TopTagAnswer& a : recs) {
      latency_ms[a.query_id] = wall.ElapsedMillis() - submit_ms[a.query_id];
    }
  });
  ctl.Start();
  TweetGenerator gen(30000, 300, 8);
  for (uint64_t round = 0; round < rounds; ++round) {
    // Real-time pacing (the paper schedules input by wall clock): allow at most one epoch
    // of update work in flight, as a fixed-capacity ingestion pipeline would.
    if (round >= 2) {
      probe.WaitPassed(round - 2);
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      submit_ms[round] = wall.ElapsedMillis();
    }
    // Queries arrive independently of the tweet stream (10/s in the paper); submitting
    // the query first models its arrival while the previous burst may still be in flight.
    query_handle->OnNext({TopTagQuery{(round * 97) % 30000, round}});
    tweet_handle->OnNext(gen.Batch(tweets_per_round));
  }
  tweet_handle->OnCompleted();
  query_handle->OnCompleted();
  ctl.Join();
  std::lock_guard<std::mutex> lock(mu);
  return latency_ms;
}

}  // namespace
}  // namespace naiad

int main() {
  using namespace naiad;
  bench::Header("Fig. 8", "query response times on a streaming iterative analysis (§6.4)",
                "fresh (consistent) queries queue behind 500-900 ms of update work per "
                "burst; queries on slightly stale state answer in <10 ms");
  constexpr uint64_t kRounds = 20;
  constexpr size_t kTweets = 16000;
  bench::Row("%llu rounds of %zu tweets + 1 query each; single process, 4 workers",
             static_cast<unsigned long long>(kRounds), kTweets);
  std::map<uint64_t, double> fresh =
      RunSeries(QueryFreshness::kConsistent, kRounds, kTweets);
  std::map<uint64_t, double> stale = RunSeries(QueryFreshness::kStale, kRounds, kTweets);
  bench::Row("%-8s %-18s %-18s", "round", "fresh (ms)", "stale (ms)");
  SampleStats fresh_stats;
  SampleStats stale_stats;
  for (uint64_t r = 0; r < kRounds; ++r) {
    bench::Row("%-8llu %-18.2f %-18.2f", static_cast<unsigned long long>(r), fresh[r],
               stale[r]);
    fresh_stats.Add(fresh[r]);
    stale_stats.Add(stale[r]);
  }
  bench::Row("median: fresh %.2f ms, stale %.2f ms", fresh_stats.Median(),
             stale_stats.Median());
  return 0;
}
