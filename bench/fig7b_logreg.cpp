// Figure 7b (§6.2): distributed logistic regression — chunked (Naiad) vs binary-tree (VW
// style) AllReduce.
//
// The paper modifies Vowpal Wabbit so its per-iteration local phases run in a Naiad vertex
// and the global average uses Naiad's data-parallel AllReduce, which gives an asymptotic
// ~35% improvement over VW's binary tree (each of k workers reduces and broadcasts 1/k of
// the vector; the tree serializes whole vectors through log k levels). Expected shape:
// chunked time-per-iteration <= tree, with the gap growing with participants.

#include "bench/bench_util.h"
#include "src/algo/logreg.h"
#include "src/base/stopwatch.h"
#include "src/core/io.h"

namespace naiad {
namespace {

double TimePerIteration(uint32_t participants, AllReduceKind kind) {
  constexpr uint32_t kDims = 4096;
  constexpr size_t kExamplesPerWorker = 800;
  constexpr uint64_t kIters = 8;
  Controller ctl(Config{.workers_per_process = std::max(participants, 1u)});
  GraphBuilder b(ctl);
  auto [go, handle] = NewInput<uint64_t>(b);
  Stream<VecPiece> reduced =
      BuildLogReg(go, participants, kDims, kExamplesPerWorker, kind, 0.05);
  Probe probe = ForEach<VecPiece>(reduced, [](const Timestamp&, std::vector<VecPiece>&) {});
  ctl.Start();
  Stopwatch sw;
  for (uint64_t e = 0; e < kIters; ++e) {
    handle->OnNext(std::vector<uint64_t>(participants, e));
    probe.WaitPassed(e);  // BSP driver (§6.2 phase structure)
  }
  const double per_iter = sw.ElapsedSeconds() / static_cast<double>(kIters);
  handle->OnCompleted();
  ctl.Join();
  return per_iter;
}

}  // namespace
}  // namespace naiad

int main() {
  using namespace naiad;
  bench::Header("Fig. 7b", "logistic regression with AllReduce (§6.2)",
                "Naiad's chunked data-parallel AllReduce beats VW's binary-tree AllReduce "
                "(~35% asymptotically); both scale until the constant-time phases dominate");
  bench::Row("dense gradient: 4096 dims; 800 examples/worker; 8 iterations");
  bench::Row("%-14s %-20s %-20s %-12s", "participants", "chunked s/iter", "tree s/iter",
             "tree/chunked");
  for (uint32_t p : {1u, 2u, 4u, 8u}) {
    const double chunked = TimePerIteration(p, AllReduceKind::kChunked);
    const double tree = TimePerIteration(p, AllReduceKind::kTree);
    bench::Row("%-14u %-20.4f %-20.4f %-12.2f", p, chunked, tree, tree / chunked);
  }
  return 0;
}
