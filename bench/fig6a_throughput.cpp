// Figure 6a (§5.1): all-to-all data exchange throughput.
//
// A cyclic dataflow repeatedly exchanges 8-byte records among all workers of all
// processes; the paper plots aggregate throughput against cluster size, against an "ideal"
// network bound and a raw .NET-socket baseline. Here the wire is loopback TCP, so the raw
// TCP baseline is measured the same way, and the expected shape is: Naiad's wire
// throughput tracks below the raw-socket line (serialization + partitioning overhead on
// 8-byte records is the worst case, as in the paper) and aggregate records/s grows with
// the worker count.

#include <atomic>
#include <cstdlib>
#include <string_view>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/stopwatch.h"
#include "src/core/io.h"
#include "src/core/loop.h"
#include "src/core/stage.h"
#include "src/net/cluster.h"
#include "src/net/socket.h"

namespace naiad {
namespace {

// Re-exchanges every record with a rotated key so each hop re-partitions (all-to-all).
class RotateVertex final : public UnaryVertex<uint64_t, uint64_t> {
 public:
  void OnRecv(const Timestamp& t, std::vector<uint64_t>& batch) override {
    for (uint64_t& x : batch) {
      x += 1;  // next hop lands on the next worker
    }
    this->output().SendBatch(t, std::move(batch));
  }
};

struct Result {
  double seconds = 0;
  uint64_t wire_bytes = 0;
  uint64_t records_moved = 0;
};

Result RunExchange(uint32_t processes, uint32_t workers, uint64_t records_per_worker,
                   uint64_t rounds) {
  Result res;
  Stopwatch sw;
  ClusterStats stats = Cluster::Run(
      ClusterOptions{.processes = processes, .workers_per_process = workers},
      [&](Controller& ctl) {
        GraphBuilder b(ctl);
        auto [in, handle] = NewInput<uint64_t>(b);
        LoopContext loop(b, 0, "exchange");
        FeedbackHandle<uint64_t> fb = loop.NewFeedback<uint64_t>(rounds);
        Partitioner<uint64_t> part = [](const uint64_t& x) { return x; };
        Stream<uint64_t> entered = loop.Ingress<uint64_t>(in, part);
        StageId rotate = b.NewStage<RotateVertex>(
            StageOptions{.name = "rotate", .depth = 1},
            [](uint32_t) { return std::make_unique<RotateVertex>(); });
        b.Connect<RotateVertex, uint64_t>(entered, rotate, 0, part);
        b.Connect<RotateVertex, uint64_t>(fb.stream(), rotate, 0, part);
        fb.ConnectLoop(b.OutputOf<uint64_t>(rotate), part);
        ctl.Start();
        const uint32_t tw = ctl.total_workers();
        std::vector<uint64_t> data;
        data.reserve(records_per_worker * ctl.config().workers_per_process);
        for (uint64_t i = 0; i < records_per_worker * ctl.config().workers_per_process;
             ++i) {
          data.push_back(i * tw + ctl.config().process_id);  // spread over all workers
        }
        handle->OnNext(std::move(data));
        handle->OnCompleted();
        ctl.Join();
      });
  res.seconds = sw.ElapsedSeconds();
  res.wire_bytes = stats.data_bytes;
  res.records_moved = records_per_worker * workers * processes * rounds;
  return res;
}

// Raw loopback TCP throughput with 64 KB writes — the "socket baseline" line.
double RawSocketGbps() {
  Listener l;
  const uint16_t port = l.Open();
  std::atomic<uint64_t> received{0};
  std::thread server([&] {
    Socket s = l.Accept();
    std::vector<uint8_t> buf(1 << 16);
    while (s.ReadAll(std::span<uint8_t>(buf.data(), buf.size()))) {
      received.fetch_add(buf.size());
    }
  });
  Socket c = Socket::ConnectLocal(port);
  std::vector<uint8_t> buf(1 << 16, 0xab);
  Stopwatch sw;
  while (sw.ElapsedSeconds() < 0.4) {
    c.WriteAll(buf);
  }
  const double secs = sw.ElapsedSeconds();
  c.ShutdownBoth();
  server.join();
  return static_cast<double>(received.load()) * 8 / secs / 1e9;
}

}  // namespace
}  // namespace naiad

int main(int argc, char** argv) {
  using namespace naiad;
  // --small: reduced scale for the CI perf-smoke job (record-only artifact).
  // --reps=N: repetitions per config (best run reported); baseline recordings use more.
  bool small = false;
  int reps_flag = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--small") {
      small = true;
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps_flag = std::atoi(argv[i] + 7);
    }
  }
  const uint64_t records_per_worker = small ? 10000 : 100000;
  const uint64_t rounds = small ? 5 : 20;
  // Loopback throughput is scheduler-noisy; each config runs `reps` times and the best
  // run is reported (the paper's cluster numbers are similarly best-case steady-state).
  const int reps = reps_flag > 0 ? reps_flag : (small ? 1 : 3);
  const std::vector<uint32_t> proc_counts = small ? std::vector<uint32_t>{1u, 2u}
                                                  : std::vector<uint32_t>{1u, 2u, 4u};
  bench::Header("Fig. 6a", "all-to-all exchange throughput (§5.1)",
                "aggregate throughput scales linearly with computers; Naiad sits below the "
                "raw-socket line because 8-byte records maximize serialization overhead");
  const double raw_gbps = RawSocketGbps();
  bench::Row("raw TCP socket baseline (loopback, 64KB writes): %.2f Gb/s", raw_gbps);
  bench::Row("%-10s %-9s %-14s %-16s %-14s", "processes", "workers", "records/s",
             "wire Gb/s", "seconds");
  bench::JsonReport json("fig6a");
  json.Config("records_per_worker", static_cast<double>(records_per_worker));
  json.Config("rounds", static_cast<double>(rounds));
  json.Config("workers_per_process", 2);
  json.Config("raw_socket_gbps", raw_gbps);
  for (uint32_t procs : proc_counts) {
    Result r = RunExchange(procs, 2, records_per_worker, rounds);
    for (int rep = 1; rep < reps; ++rep) {
      Result again = RunExchange(procs, 2, records_per_worker, rounds);
      if (again.seconds < r.seconds) {
        r = again;
      }
    }
    const double rps = static_cast<double>(r.records_moved) / r.seconds;
    const double gbps = static_cast<double>(r.wire_bytes) * 8 / r.seconds / 1e9;
    bench::Row("%-10u %-9u %-14.3e %-16.3f %-14.2f", procs, procs * 2, rps, gbps,
               r.seconds);
    json.NewRow();
    json.Num("processes", procs);
    json.Num("workers", procs * 2);
    json.Num("records_per_sec", rps);
    json.Num("wire_gbps", gbps);
    json.Num("seconds", r.seconds);
  }
  json.Write();
  bench::Row("(single-process rows exchange through shared memory: wire Gb/s ~ 0)");
  return 0;
}
