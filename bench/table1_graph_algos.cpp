// Table 1 (§6.1): batch iterative graph algorithms — Naiad vs a DryadLINQ-style batch
// engine that re-materializes (serializes + spills + deserializes) its whole state between
// iterations (DESIGN.md substitution #3).
//
// Paper's numbers (seconds, Category A web graph, 16 computers):
//            PDW      DryadLINQ  SHS      Naiad
//  PageRank  156,982  68,791     836,455  4,656
//  SCC       7,306    6,294      15,903   729
//  WCC       214,479  160,168    26,210   268
//  ASP       671,142  749,016    2,381,278 1,131
//
// Expected shape here: Naiad beats the per-iteration-materializing baseline by one to two
// orders of magnitude on the iteration-heavy algorithms (WCC/ASP), less on PageRank whose
// fixed iteration count bounds the gap. The PageRank-CSR / WCC-CSR rows run the same
// dataflows on the columnar substrate (src/algo/csr.h) against the same batch baseline.
//
// Scale knobs (EXPERIMENTS.md "Scale sweeps"):
//   --edges=N   edge count (default 120000)
//   --nodes=N   node count (default edges/4)

#include <atomic>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/algo/asp.h"
#include "src/algo/pagerank.h"
#include "src/algo/scc.h"
#include "src/algo/wcc.h"
#include "src/baseline/batch_engine.h"
#include "src/base/stopwatch.h"
#include "src/core/io.h"
#include "src/gen/graphs.h"

namespace naiad {
namespace {

constexpr uint32_t kWorkers = 4;
constexpr uint64_t kPrIters = 10;
constexpr uint64_t kSccRounds = 3;
const std::vector<uint64_t> kAspSources = {1, 2, 3, 4};

uint64_t FlagU64(int argc, char** argv, const char* name, uint64_t dflt) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return dflt;
}

template <typename BuildFn>
double TimeNaiad(const std::vector<Edge>& edges, BuildFn build) {
  Controller ctl(Config{.workers_per_process = kWorkers});
  GraphBuilder b(ctl);
  auto [in, handle] = NewInput<Edge>(b);
  build(b, in);
  ctl.Start();
  Stopwatch sw;
  handle->OnNext(edges);
  handle->OnCompleted();
  ctl.Join();
  return sw.ElapsedSeconds();
}

std::atomic<uint64_t> g_sink{0};

template <typename T>
void Sink(const Stream<T>& s) {
  ForEach<T>(s, [](const Timestamp&, std::vector<T>& recs) {
    g_sink.fetch_add(recs.size());
  });
}

}  // namespace
}  // namespace naiad

int main(int argc, char** argv) {
  using namespace naiad;
  const uint64_t edges_n = FlagU64(argc, argv, "edges", 120000);
  const uint64_t nodes_n = FlagU64(argc, argv, "nodes", edges_n / 4);
  bench::Header("Table 1", "batch iterative graph algorithms (§6.1)",
                "in-memory iteration beats per-iteration state serialization by 1-2 orders "
                "of magnitude (Naiad vs DryadLINQ: PageRank 15x, SCC 8.6x, WCC 600x, ASP "
                "660x)");
  const std::vector<Edge> edges = RandomGraph(nodes_n, edges_n, 21);
  const std::string spill = "/tmp/naiad_table1.spill";
  bench::Row("synthetic web graph: %llu nodes, %llu edges; %u workers; spill file: %s",
             static_cast<unsigned long long>(nodes_n),
             static_cast<unsigned long long>(edges_n), kWorkers, spill.c_str());
  bench::Row("%-12s %-14s %-14s %-12s", "algorithm", "naiad (s)", "batch (s)", "speedup");

  {
    const double naiad_s = TimeNaiad(edges, [&](GraphBuilder& b, Stream<Edge>& in) {
      Sink(PageRank(in, kPrIters));
    });
    Stopwatch sw;
    BatchPageRank(edges, kPrIters, spill);
    const double batch_s = sw.ElapsedSeconds();
    bench::Row("%-12s %-14.3f %-14.3f %-12.1fx", "PageRank", naiad_s, batch_s,
               batch_s / naiad_s);
    const double csr_s = TimeNaiad(edges, [&](GraphBuilder& b, Stream<Edge>& in) {
      Sink(PageRankCsr(in, kPrIters));
    });
    bench::Row("%-12s %-14.3f %-14.3f %-12.1fx", "PageRank-CSR", csr_s, batch_s,
               batch_s / csr_s);
  }
  {
    const double naiad_s = TimeNaiad(edges, [&](GraphBuilder& b, Stream<Edge>& in) {
      Sink(StronglyConnectedComponents(in, kSccRounds));
    });
    Stopwatch sw;
    BatchScc(edges, kSccRounds, spill);
    const double batch_s = sw.ElapsedSeconds();
    bench::Row("%-12s %-14.3f %-14.3f %-12.1fx", "SCC", naiad_s, batch_s,
               batch_s / naiad_s);
  }
  {
    const double naiad_s = TimeNaiad(edges, [&](GraphBuilder& b, Stream<Edge>& in) {
      Sink(ConnectedComponents(in));
    });
    Stopwatch sw;
    BatchWcc(edges, spill);
    const double batch_s = sw.ElapsedSeconds();
    bench::Row("%-12s %-14.3f %-14.3f %-12.1fx", "WCC", naiad_s, batch_s,
               batch_s / naiad_s);
    const double csr_s = TimeNaiad(edges, [&](GraphBuilder& b, Stream<Edge>& in) {
      Sink(ConnectedComponentsCsr(in));
    });
    bench::Row("%-12s %-14.3f %-14.3f %-12.1fx", "WCC-CSR", csr_s, batch_s,
               batch_s / csr_s);
  }
  {
    double naiad_s = 0;
    {
      Controller ctl(Config{.workers_per_process = kWorkers});
      GraphBuilder b(ctl);
      auto [ein, ehandle] = NewInput<Edge>(b, "edges");
      auto [sin, shandle] = NewInput<uint64_t>(b, "sources");
      Sink(ApproximateShortestPaths(ein, sin));
      ctl.Start();
      Stopwatch sw;
      ehandle->OnNext(edges);
      shandle->OnNext(kAspSources);
      ehandle->OnCompleted();
      shandle->OnCompleted();
      ctl.Join();
      naiad_s = sw.ElapsedSeconds();
    }
    Stopwatch sw;
    BatchAsp(edges, kAspSources, spill);
    const double batch_s = sw.ElapsedSeconds();
    bench::Row("%-12s %-14.3f %-14.3f %-12.1fx", "ASP", naiad_s, batch_s,
               batch_s / naiad_s);
  }
  return 0;
}
