// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench prints (a) the paper's claim for the figure/table it regenerates and (b) a
// table of measured rows in the same shape. Absolute numbers differ from the paper's 2013
// cluster — EXPERIMENTS.md records both sides; the *shape* is the reproduction target.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <string>

namespace naiad::bench {

inline void Header(const char* id, const char* title, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("paper: %s\n", claim);
  std::printf("================================================================\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace naiad::bench

#endif  // BENCH_BENCH_UTIL_H_
