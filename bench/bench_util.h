// Shared helpers for the paper-reproduction benchmark binaries.
//
// Every bench prints (a) the paper's claim for the figure/table it regenerates and (b) a
// table of measured rows in the same shape. Absolute numbers differ from the paper's 2013
// cluster — EXPERIMENTS.md records both sides; the *shape* is the reproduction target.
//
// Benches additionally emit a machine-readable run record, BENCH_<figure>.json, so the
// repository can keep a perf trajectory across PRs (see EXPERIMENTS.md "Recording
// baselines"). A run is labelled via NAIAD_BENCH_LABEL (default "current") and written to
// NAIAD_BENCH_DIR (default the working directory). The file accumulates runs: writing a
// label that already exists replaces that run and keeps the others, so one checked-in
// file can carry pre- and post-optimization baselines side by side.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace naiad::bench {

inline void Header(const char* id, const char* title, const char* claim) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("paper: %s\n", claim);
  std::printf("================================================================\n");
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
  std::fflush(stdout);
}

// One benchmark run destined for BENCH_<figure>.json: a flat config block plus a list of
// measured rows, each a flat object of numeric/string fields (records_per_sec, p50_us,
// p99_us, ... — whatever the figure measures). Values are kept as preformatted JSON
// scalars so the writer needs no type dispatch.
class JsonReport {
 public:
  explicit JsonReport(std::string figure) : figure_(std::move(figure)) {}

  void Config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, Quote(value));
  }
  void Config(const std::string& key, double value) {
    config_.emplace_back(key, Number(value));
  }

  // Starts a new row; subsequent Num/Str calls fill it.
  void NewRow() { rows_.emplace_back(); }
  void Num(const std::string& key, double value) {
    rows_.back().emplace_back(key, Number(value));
  }
  void Str(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, Quote(value));
  }

  // Writes (or updates) BENCH_<figure>.json. Returns the path written (empty on failure).
  std::string Write() const {
    const char* dir = std::getenv("NAIAD_BENCH_DIR");
    const char* env_label = std::getenv("NAIAD_BENCH_LABEL");
    const std::string label = env_label != nullptr ? env_label : "current";
    std::string path =
        std::string(dir != nullptr ? dir : ".") + "/BENCH_" + figure_ + ".json";
    // One run per line lets an update replace its own label textually — no JSON parser.
    std::string line = "{\"label\": " + Quote(label) + ", \"config\": " + Object(config_) +
                       ", \"rows\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
      line += (i == 0 ? "" : ", ") + Object(rows_[i]);
    }
    line += "]}";
    std::vector<std::string> runs = ReadExistingRuns(path, label);
    runs.push_back(std::move(line));
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return "";
    }
    std::string out = "{\"figure\": " + Quote(figure_) + ", \"runs\": [\n";
    for (size_t i = 0; i < runs.size(); ++i) {
      out += runs[i] + (i + 1 < runs.size() ? ",\n" : "\n");
    }
    out += "]}\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s (label %s)\n", path.c_str(), label.c_str());
    return path;
  }

 private:
  using Fields = std::vector<std::pair<std::string, std::string>>;

  // Returns the run lines already present in `path`, minus any run carrying `label`
  // (which the caller is about to rewrite). Run lines are the ones starting with
  // `{"label":` — the writer above puts exactly one run per line.
  static std::vector<std::string> ReadExistingRuns(const std::string& path,
                                                   const std::string& label) {
    std::vector<std::string> runs;
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr) {
      return runs;
    }
    std::string contents;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      contents.append(buf, n);
    }
    std::fclose(f);
    const std::string skip = "{\"label\": " + Quote(label);
    size_t pos = 0;
    while (pos < contents.size()) {
      size_t eol = contents.find('\n', pos);
      if (eol == std::string::npos) {
        eol = contents.size();
      }
      std::string line = contents.substr(pos, eol - pos);
      pos = eol + 1;
      if (!line.empty() && line.back() == ',') {
        line.pop_back();
      }
      if (line.rfind("{\"label\":", 0) == 0 && line.rfind(skip, 0) != 0) {
        runs.push_back(std::move(line));
      }
    }
    return runs;
  }

  static std::string Quote(const std::string& s) {
    std::string q = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        q += '\\';
      }
      q += c;
    }
    return q + "\"";
  }

  static std::string Number(double v) {
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 && v > -1e15) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof(buf), "%.6g", v);
    }
    return buf;
  }

  static std::string Object(const Fields& fields) {
    std::string out = "{";
    for (size_t i = 0; i < fields.size(); ++i) {
      out += (i == 0 ? "" : ",");
      out += " " + Quote(fields[i].first) + ": " + fields[i].second;
    }
    return out + " }";
  }

  std::string figure_;
  Fields config_;
  std::vector<Fields> rows_;
};

// Progress-scope accounting fields shared by the fig6c table and its JSON record: how
// many of the emitted progress bytes were cross-scope (root-space updates that must reach
// every process regardless of organization), how many were loop-internal, and what the
// summarized boundary traffic plus occurrence-map footprint looked like. `cross_total` is
// the number the scoped refactor is judged by: root-space wire bytes plus boundary-image
// bytes (the only traffic a per-scope deployment sends across scopes).
struct ScopeAccounting {
  double cross_total_kb = 0;
  double in_scope_kb = 0;
  double boundary_kb = 0;
  double boundary_updates = 0;
  double occ_map_peak = 0;
  double occ_map_peak_root = 0;

  template <typename ClusterStatsT>
  static ScopeAccounting From(const ClusterStatsT& s) {
    ScopeAccounting a;
    a.cross_total_kb =
        (s.progress_cross_scope_bytes + s.progress_boundary_bytes) / 1024.0;
    a.in_scope_kb = s.progress_in_scope_bytes / 1024.0;
    a.boundary_kb = s.progress_boundary_bytes / 1024.0;
    a.boundary_updates = static_cast<double>(s.progress_boundary_updates);
    a.occ_map_peak = static_cast<double>(s.occ_map_peak);
    a.occ_map_peak_root = static_cast<double>(s.occ_map_peak_root);
    return a;
  }

  void AddTo(JsonReport& report) const {
    report.Num("cross_scope_kb", cross_total_kb);
    report.Num("in_scope_kb", in_scope_kb);
    report.Num("boundary_kb", boundary_kb);
    report.Num("boundary_updates", boundary_updates);
    report.Num("occ_map_peak", occ_map_peak);
    report.Num("occ_map_peak_root", occ_map_peak_root);
  }
};

// Appends an observability snapshot to `report` as rows of kind "obs_counter" /
// "obs_histogram", so the BENCH_*.json trajectory carries the metric series alongside the
// figure's own measurements.
inline void AddObsRows(JsonReport& report, const obs::ObsSnapshot& snap) {
  for (const auto& [name, value] : snap.counters) {
    report.NewRow();
    report.Str("kind", "obs_counter");
    report.Str("metric", name);
    report.Num("value", static_cast<double>(value));
  }
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    report.NewRow();
    report.Str("kind", "obs_histogram");
    report.Str("metric", h.name);
    report.Num("count", static_cast<double>(h.count));
    report.Num("mean", h.mean);
    report.Num("p50", h.p50);
    report.Num("p99", h.p99);
    report.Num("max", h.max);
  }
}

}  // namespace naiad::bench

#endif  // BENCH_BENCH_UTIL_H_
